"""Protocol-contract rules (P2xx).

These cross-check the three stable-state engines against the state enums
in :mod:`repro.core.states` and the columnar type-code table, so the
ROADMAP's aggressive protocol refactors cannot silently drift from the
contracts the batched kernel and the verification model rely on.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence

from repro.lint.classdb import ClassDb
from repro.lint.context import (
    ENGINE_STATE_ALPHABET,
    HOT_COMMUTATIVE_VALUES,
    PROTOCOL_ENGINE_MODULES,
    ProjectContext,
)
from repro.lint.engine import Rule, SourceModule
from repro.lint.violations import Violation

#: Base classes known to provide a valid generic ``hot_mask`` (the MESI
#: family shares :meth:`CoherenceProtocol.hot_mask`).
_HOT_MASK_PROVIDERS = frozenset(
    {"CoherenceProtocol", "MesiProtocol", "MeusiProtocol", "RmoProtocol"}
)

#: Base classes known to provide the group-retirement merge
#: (:meth:`MesiProtocol.resolve_slow_batch` services the MESI family).
_SLOW_BATCH_PROVIDERS = frozenset({"MesiProtocol", "MeusiProtocol"})


class UnknownEnumMemberRule(Rule):
    """P201: references to nonexistent state-enum members.

    ``StableState.OWNED`` parses, imports, and only explodes at runtime on
    the exact path that exercises it; this catches the typo at lint time by
    checking every ``Enum.X`` attribute access against the live enum.
    """

    code = "P201"
    symbol = "unknown-enum-member"
    description = (
        "attribute access on the protocol enums (StableState, LineMode, "
        "RequestType, AccessType, CommutativeOp) must name a real member"
    )

    def check(self, module: SourceModule, ctx: ProjectContext) -> List[Violation]:
        members = ctx.enum_members
        findings: List[Violation] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if not isinstance(node.value, ast.Name):
                continue
            enum_name = node.value.id
            allowed = members.get(enum_name)
            if allowed is None or node.attr.startswith("_"):
                continue
            if node.attr not in allowed:
                findings.append(
                    self.violation(
                        module,
                        node,
                        f"{enum_name}.{node.attr} does not exist — members are "
                        f"{', '.join(sorted(allowed))}",
                    )
                )
        return findings


class BatchContractRule(Rule):
    """P202: the batched-kernel contract on protocol classes.

    A class opting into ``SUPPORTS_BATCH_KERNEL = True`` must satisfy the
    contract :mod:`repro.sim.kernel` assumes: an inline fast path, a
    ``hot_mask`` (own or inherited from the MESI family), a legal
    ``HOT_COMMUTATIVE`` folding mode, and — for ``"local"`` folding —
    a ``batch_uop_code`` hook so U-line buffering can be classified per
    chunk.

    The group-retirement participation flag carries its own biconditional:
    ``SUPPORTS_SLOW_BATCH = True`` requires a ``resolve_slow_batch`` merge
    (own or inherited from the MESI family), and a class that *defines*
    ``resolve_slow_batch`` while declaring ``SUPPORTS_SLOW_BATCH = False``
    is lying to the kernel's dispatch (the method would never run).  A
    run-level check additionally verifies the 104-entry columnar type-code
    table still covers every code the kernel classifies, and that every
    live ``SUPPORTS_SLOW_BATCH`` engine exposes a callable
    ``resolve_slow_batch`` plus the 4x5 ``SLOW_SHAPE_TABLE`` the entry
    gate indexes.
    """

    code = "P202"
    symbol = "batch-contract"
    description = (
        "SUPPORTS_BATCH_KERNEL protocols must declare the full batch "
        "contract (inline fast path, hot_mask, legal HOT_COMMUTATIVE, "
        "batch_uop_code for local folding, resolve_slow_batch iff "
        "SUPPORTS_SLOW_BATCH)"
    )

    def applies(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/core/")

    def check(self, module: SourceModule, ctx: ProjectContext) -> List[Violation]:
        findings: List[Violation] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(module, node))
        return findings

    def _check_class(self, module: SourceModule, node: ast.ClassDef) -> List[Violation]:
        flags: Dict[str, object] = {}
        methods = set()
        for statement in node.body:
            if isinstance(statement, ast.Assign):
                for target in statement.targets:
                    if isinstance(target, ast.Name) and isinstance(
                        statement.value, ast.Constant
                    ):
                        flags[target.id] = statement.value.value
            elif isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                if isinstance(statement.value, ast.Constant):
                    flags[statement.target.id] = statement.value.value
            elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.add(statement.name)
        base_names = {
            base.id if isinstance(base, ast.Name) else getattr(base, "attr", "")
            for base in node.bases
        }
        findings: List[Violation] = []

        hot_commutative = flags.get("HOT_COMMUTATIVE")
        if hot_commutative is not None and hot_commutative not in HOT_COMMUTATIVE_VALUES:
            findings.append(
                self.violation(
                    module,
                    node,
                    f"{node.name}: HOT_COMMUTATIVE={hot_commutative!r} is not one "
                    f"of {sorted(HOT_COMMUTATIVE_VALUES)}",
                )
            )
        if hot_commutative == "local" and "batch_uop_code" not in methods:
            findings.append(
                self.violation(
                    module,
                    node,
                    f"{node.name}: HOT_COMMUTATIVE='local' requires a "
                    "batch_uop_code(core_id, line_addr) hook so the kernel can "
                    "classify U-line buffering per chunk",
                )
            )

        slow_batch = flags.get("SUPPORTS_SLOW_BATCH")
        inherits_slow_batch = bool(base_names & _SLOW_BATCH_PROVIDERS)
        if (
            slow_batch is True
            and "resolve_slow_batch" not in methods
            and not inherits_slow_batch
        ):
            findings.append(
                self.violation(
                    module,
                    node,
                    f"{node.name}: SUPPORTS_SLOW_BATCH=True but no "
                    "resolve_slow_batch merge is defined or inherited from "
                    "the MESI family",
                )
            )
        if slow_batch is False and "resolve_slow_batch" in methods:
            findings.append(
                self.violation(
                    module,
                    node,
                    f"{node.name}: defines resolve_slow_batch but declares "
                    "SUPPORTS_SLOW_BATCH=False — the kernel would never call "
                    "it; flip the flag or drop the method",
                )
            )

        if flags.get("SUPPORTS_BATCH_KERNEL") is not True:
            return findings
        inherits_mask = bool(base_names & _HOT_MASK_PROVIDERS)
        if "hot_mask" not in methods and not inherits_mask:
            findings.append(
                self.violation(
                    module,
                    node,
                    f"{node.name}: SUPPORTS_BATCH_KERNEL=True but no hot_mask "
                    "is defined or inherited from the MESI family",
                )
            )
        declares_inline = flags.get("SUPPORTS_INLINE_FAST_PATH") is True
        if not declares_inline and not inherits_mask:
            findings.append(
                self.violation(
                    module,
                    node,
                    f"{node.name}: SUPPORTS_BATCH_KERNEL=True requires "
                    "SUPPORTS_INLINE_FAST_PATH=True (the kernel drops into the "
                    "inline/resolve_slow machinery at run boundaries)",
                )
            )
        return findings

    def finalize(
        self,
        modules: Sequence[SourceModule],
        ctx: ProjectContext,
        classdb: ClassDb,
    ) -> List[Violation]:
        # Semantic cross-check against the live package: only meaningful
        # when the real engines are part of the run.
        linted = {module.relpath for module in modules}
        if "src/repro/sim/columnar.py" not in linted:
            return []
        findings: List[Violation] = []
        from repro.sim import columnar
        from repro.sim.simulator import PROTOCOLS

        n_codes = len(columnar.CODE_KIND)
        if n_codes != 104:
            findings.append(
                Violation(
                    path="src/repro/sim/columnar.py",
                    line=1,
                    col=0,
                    code=self.code,
                    symbol=self.symbol,
                    message=(
                        f"type-code table has {n_codes} entries, expected 104 — "
                        "update the documented layout and every consumer together"
                    ),
                )
            )
        known_kinds = {
            columnar.KIND_LOAD,
            columnar.KIND_STORE,
            columnar.KIND_ATOMIC,
            columnar.KIND_COMMUTATIVE,
            columnar.KIND_REMOTE,
        }
        bad_codes = [
            code
            for code in range(n_codes)
            if int(columnar.CODE_KIND[code]) not in known_kinds
        ]
        if bad_codes:
            findings.append(
                Violation(
                    path="src/repro/sim/columnar.py",
                    line=1,
                    col=0,
                    code=self.code,
                    symbol=self.symbol,
                    message=(
                        f"type codes {bad_codes} map to no known access kind — "
                        "hot_mask could misclassify them"
                    ),
                )
            )
        for name, protocol_cls in sorted(PROTOCOLS.items()):
            if not getattr(protocol_cls, "SUPPORTS_BATCH_KERNEL", False):
                continue
            problems = []
            if not getattr(protocol_cls, "SUPPORTS_INLINE_FAST_PATH", False):
                problems.append("lacks SUPPORTS_INLINE_FAST_PATH")
            if not callable(getattr(protocol_cls, "hot_mask", None)):
                problems.append("lacks a callable hot_mask")
            folding = getattr(protocol_cls, "HOT_COMMUTATIVE", None)
            if folding not in HOT_COMMUTATIVE_VALUES:
                problems.append(f"illegal HOT_COMMUTATIVE={folding!r}")
            if folding == "local" and not callable(
                getattr(protocol_cls, "batch_uop_code", None)
            ):
                problems.append("local folding without batch_uop_code")
            if getattr(protocol_cls, "SUPPORTS_SLOW_BATCH", False):
                if not callable(getattr(protocol_cls, "resolve_slow_batch", None)):
                    problems.append(
                        "SUPPORTS_SLOW_BATCH without a callable resolve_slow_batch"
                    )
                table = getattr(protocol_cls, "SLOW_SHAPE_TABLE", None)
                if getattr(table, "shape", None) != (4, 5):
                    problems.append(
                        "SUPPORTS_SLOW_BATCH without a 4x5 SLOW_SHAPE_TABLE "
                        "(line modes x access kinds)"
                    )
            elif "resolve_slow_batch" in vars(protocol_cls):
                problems.append(
                    "defines resolve_slow_batch but SUPPORTS_SLOW_BATCH is False"
                )
            if problems:
                findings.append(
                    Violation(
                        path=_module_relpath(protocol_cls),
                        line=1,
                        col=0,
                        code=self.code,
                        symbol=self.symbol,
                        message=(
                            f"protocol {name} ({protocol_cls.__name__}) violates "
                            f"the batch contract: {'; '.join(problems)}"
                        ),
                    )
                )
        return findings


def _module_relpath(cls: type) -> str:
    return "src/" + cls.__module__.replace(".", "/") + ".py"


class StateAlphabetRule(Rule):
    """P203: engines may only name states in their declared alphabet.

    ``rmo.py`` and ``mesi.py`` implement MESI-family semantics and must not
    grow references to COUP's ``UPDATE`` state (the two places where
    ``mesi.py``'s shared machinery services MEUSI's U lines via inheritance
    carry audited suppressions); ``meusi.py`` may use the full alphabet.
    """

    code = "P203"
    symbol = "state-alphabet"
    description = (
        "each protocol engine module may only reference StableState members "
        "in its declared alphabet"
    )

    def applies(self, relpath: str) -> bool:
        return relpath in ENGINE_STATE_ALPHABET

    def check(self, module: SourceModule, ctx: ProjectContext) -> List[Violation]:
        alphabet = ENGINE_STATE_ALPHABET[module.relpath]
        members = ctx.enum_members.get("StableState", frozenset())
        findings: List[Violation] = []
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "StableState"
                and node.attr in members
                and node.attr.isupper()
                and node.attr not in alphabet
            ):
                findings.append(
                    self.violation(
                        module,
                        node,
                        f"StableState.{node.attr} is outside this engine's "
                        f"alphabet {{{', '.join(sorted(alphabet))}}}",
                    )
                )
        return findings
