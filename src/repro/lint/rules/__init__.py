"""Rule registry: the catalogue of all repro-lint rules."""

from __future__ import annotations

from typing import Dict, List

from repro.lint.engine import Rule
from repro.lint.rules.determinism import (
    UnorderedIterationRule,
    UnseededRngRule,
    UnsortedSerializationRule,
    WallClockRule,
)
from repro.lint.rules.hygiene import (
    AttrOutsideInitRule,
    EnvRegistryRule,
    SlotsRequiredRule,
)
from repro.lint.rules.protocol import (
    BatchContractRule,
    StateAlphabetRule,
    UnknownEnumMemberRule,
)

#: Engine meta-findings (not suppressible, not rule classes).
META_CODES: Dict[str, str] = {
    "X100": "unknown-rule",
    "X101": "malformed-suppression",
    "X102": "unused-suppression",
    "X103": "budget-mismatch",
    "X104": "syntax-error",
}

_RULE_CLASSES = (
    UnseededRngRule,
    UnorderedIterationRule,
    WallClockRule,
    UnsortedSerializationRule,
    UnknownEnumMemberRule,
    BatchContractRule,
    StateAlphabetRule,
    SlotsRequiredRule,
    AttrOutsideInitRule,
    EnvRegistryRule,
)


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in code order."""
    return [rule_cls() for rule_cls in _RULE_CLASSES]


def rule_catalogue() -> List[Dict[str, str]]:
    """The rule table for ``--list-rules`` and the README."""
    catalogue = [
        {
            "code": rule.code,
            "symbol": rule.symbol,
            "description": rule.description,
        }
        for rule in all_rules()
    ]
    catalogue.extend(
        {
            "code": code,
            "symbol": symbol,
            "description": "engine meta-finding (not suppressible)",
        }
        for code, symbol in sorted(META_CODES.items())
    )
    return catalogue
