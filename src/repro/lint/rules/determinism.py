"""Determinism rules (D1xx).

These police the discipline that keeps every documented guarantee true:
golden fingerprints, ``--jobs N`` scheduling-independence, sweep-cache
content hashes, and kernel/scalar bit-identity.
"""

from __future__ import annotations

import ast
from typing import List, Sequence

from repro.lint.classdb import ClassDb
from repro.lint.context import (
    OBS_WALLCLOCK_MODULES,
    ProjectContext,
    is_obs_module,
    is_obs_wallclock_module,
    is_result_affecting,
    is_verification_module,
)
from repro.lint.engine import Rule, SourceModule
from repro.lint.rules.common import (
    build_import_map,
    call_name,
    iteration_targets,
)
from repro.lint.violations import Violation

#: ``random``-module attributes that are fine to touch: seeding, explicit
#: generator construction (seededness of constructors is checked separately),
#: and state capture.  Everything else is a draw from the shared global
#: generator, which any import-order change silently perturbs.
_RANDOM_ALLOWED = frozenset(
    {"Random", "SystemRandom", "seed", "getstate", "setstate"}
)
#: Same for ``numpy.random``: explicit generator construction and seeding.
_NP_RANDOM_ALLOWED = frozenset(
    {"default_rng", "Generator", "SeedSequence", "RandomState", "seed",
     "BitGenerator", "PCG64", "Philox", "SFC64", "MT19937"}
)
#: Constructors that must receive an explicit seed argument.
_SEEDED_CONSTRUCTORS = frozenset(
    {"random.Random", "numpy.random.default_rng", "numpy.random.RandomState",
     "numpy.random.SeedSequence"}
)

#: Wall-clock reads.  Only the batched kernel's documented bail heuristic
#: may consult these inside result-affecting modules (inline-suppressed
#: there with audited reasons).
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.thread_time",
        "time.thread_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class UnseededRngRule(Rule):
    """D101: no draws from the shared module-level RNGs.

    Every random draw must come from an explicitly seeded generator object
    (``random.Random(seed)`` / ``np.random.default_rng(seed)``) that the
    caller threads to the draw site, so results depend only on the seed —
    not on import order, scheduling, or unrelated code consuming the
    global stream.
    """

    code = "D101"
    symbol = "unseeded-rng"
    description = (
        "random draws must come from an explicitly seeded generator object, "
        "never the module-level random / numpy.random state"
    )

    def check(self, module: SourceModule, ctx: ProjectContext) -> List[Violation]:
        imports = build_import_map(module.tree)
        findings: List[Violation] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = call_name(node, imports)
            if qualified is None:
                continue
            if qualified in _SEEDED_CONSTRUCTORS and not node.args:
                findings.append(
                    self.violation(
                        module,
                        node,
                        f"{qualified}() constructed without a seed — pass an "
                        "explicit seed so the stream is reproducible",
                    )
                )
                continue
            owner, _, attr = qualified.rpartition(".")
            if owner == "random" and attr not in _RANDOM_ALLOWED:
                findings.append(
                    self.violation(
                        module,
                        node,
                        f"draw from the module-level RNG (random.{attr}) — "
                        "thread a seeded random.Random instance instead",
                    )
                )
            elif owner == "numpy.random" and attr not in _NP_RANDOM_ALLOWED:
                findings.append(
                    self.violation(
                        module,
                        node,
                        f"draw from the module-level RNG (numpy.random.{attr}) "
                        "— thread a seeded numpy Generator instead",
                    )
                )
        return findings


class UnorderedIterationRule(Rule):
    """D102: no direct iteration over hash-ordered / insertion-ordered views
    in result-affecting modules.

    Iterating a ``set`` (hash order) or a dict view (insertion order) lets
    incidental construction order leak into results.  Wrap the iterable in
    ``sorted(...)``, or — where the order provably cannot reach a result —
    suppress with the proof as the reason.

    The verification harness (``repro/verification/``) is scanned too: its
    guarantees — sharded BFS counts bit-identical to the serial checker,
    seed-reproducible walks and shrinks — are exactly the kind that an
    incidental hash-order iteration silently breaks.
    """

    code = "D102"
    symbol = "unordered-iteration"
    description = (
        "result-affecting and verification modules must iterate sets and "
        "dict views in a canonical (sorted) order"
    )

    #: Wrappers that preserve the underlying (non-canonical) order, so the
    #: rule looks through them one level.
    _TRANSPARENT_WRAPPERS = frozenset({"list", "tuple", "enumerate", "reversed", "iter"})
    #: Reducers whose result cannot depend on iteration order; a generator
    #: expression consumed directly by one of these is exempt.
    _ORDER_INSENSITIVE_REDUCERS = frozenset(
        {"sum", "min", "max", "len", "any", "all", "set", "frozenset", "sorted"}
    )

    def applies(self, relpath: str) -> bool:
        return is_result_affecting(relpath) or is_verification_module(relpath)

    def check(self, module: SourceModule, ctx: ProjectContext) -> List[Violation]:
        exempt = self._reducer_generators(module.tree)
        findings: List[Violation] = []
        for target in iteration_targets(module.tree):
            if id(target) in exempt:
                continue
            offender = self._match(target)
            if offender is not None:
                findings.append(self.violation(module, target, offender))
        return findings

    def _reducer_generators(self, tree: ast.AST) -> set:
        """ids of iteration expressions inside ``sum(... for ...)``-style
        order-insensitive reductions."""
        exempt: set = set()
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in self._ORDER_INSENSITIVE_REDUCERS
                and len(node.args) >= 1
                and isinstance(node.args[0], (ast.GeneratorExp, ast.ListComp, ast.SetComp))
            ):
                for generator in node.args[0].generators:
                    exempt.add(id(generator.iter))
        return exempt

    def _match(self, node: ast.expr, depth: int = 0) -> str | None:
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in (
                "values",
                "keys",
                "items",
            ):
                return (
                    f".{func.attr}() iterated in insertion order — wrap in "
                    "sorted(...) or justify via suppression"
                )
            if isinstance(func, ast.Name):
                if func.id in ("set", "frozenset"):
                    return (
                        f"{func.id}(...) iterated in hash order — wrap in "
                        "sorted(...)"
                    )
                if (
                    func.id in self._TRANSPARENT_WRAPPERS
                    and depth == 0
                    and node.args
                ):
                    return self._match(node.args[0], depth=1)
        elif isinstance(node, (ast.Set, ast.SetComp)):
            return "set literal iterated in hash order — wrap in sorted(...)"
        return None


class WallClockRule(Rule):
    """D103: no wall-clock reads outside the sanctioned island.

    Simulated time is the only clock results may depend on, so
    result-affecting modules must not read the host clock.  Two sanctioned
    exceptions exist, each with its own audit trail:

    * the batched kernel's bail heuristic, whose measured-overhead check
      deliberately reads the host clock *and feeds it only into
      kernel-vs-scalar dispatch whose two outcomes are bit-identical* —
      those sites carry audited inline suppressions (the waiver budget);
    * the telemetry registry, the wall-clock island every timing read in
      the tree routes through — allowlisted module-by-module in
      :data:`~repro.lint.context.OBS_WALLCLOCK_MODULES`.

    The rule also scans the rest of ``repro/obs/`` (event writers, the
    report) so telemetry code outside the island cannot quietly grow its
    own clock reads, and :meth:`finalize` audits the allowlist the same
    way the waiver budget is audited: an entry whose module no longer
    exists or no longer reads the clock is flagged stale.
    """

    code = "D103"
    symbol = "wall-clock"
    description = (
        "no host-clock reads outside the obs registry island (result-"
        "affecting modules: audited suppressions only; repro/obs: "
        "OBS_WALLCLOCK_MODULES only)"
    )

    def applies(self, relpath: str) -> bool:
        return is_result_affecting(relpath) or is_obs_module(relpath)

    def check(self, module: SourceModule, ctx: ProjectContext) -> List[Violation]:
        if is_obs_wallclock_module(module.relpath):
            return []  # the island itself; audited for staleness in finalize
        in_obs = is_obs_module(module.relpath)
        imports = build_import_map(module.tree)
        findings: List[Violation] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = call_name(node, imports)
            if qualified in _WALL_CLOCK:
                if in_obs:
                    message = (
                        f"wall-clock read ({qualified}) outside the obs "
                        "registry island — route timing through "
                        "repro.obs.registry.clock or add the module to "
                        "OBS_WALLCLOCK_MODULES"
                    )
                else:
                    message = (
                        f"wall-clock read ({qualified}) in a result-affecting "
                        "module — simulated time is the only sanctioned clock"
                    )
                findings.append(self.violation(module, node, message))
        return findings

    def finalize(
        self,
        modules: Sequence[SourceModule],
        ctx: ProjectContext,
        classdb: ClassDb,
    ) -> List[Violation]:
        # Allowlist audit: only when the obs package is actually part of
        # the run (a real-tree lint, not a fixture suite), mirroring the
        # H303 README check and the suppression-budget audit.
        obs_modules = {
            module.relpath: module
            for module in modules
            if is_obs_module(module.relpath)
        }
        if not obs_modules:
            return []
        findings: List[Violation] = []
        for entry in OBS_WALLCLOCK_MODULES:
            module = obs_modules.get(entry)
            if module is None:
                findings.append(
                    Violation(
                        path=entry,
                        line=1,
                        col=0,
                        code=self.code,
                        symbol=self.symbol,
                        message=(
                            "stale OBS_WALLCLOCK_MODULES entry: module is not "
                            "part of the linted tree — shrink the allowlist"
                        ),
                    )
                )
                continue
            if module.tree is None:
                continue  # unparseable; the parse error is reported elsewhere
            imports = build_import_map(module.tree)
            reads_clock = any(
                isinstance(node, ast.Call)
                and call_name(node, imports) in _WALL_CLOCK
                for node in ast.walk(module.tree)
            )
            if not reads_clock:
                findings.append(
                    self.violation(
                        module,
                        module.tree,
                        "stale OBS_WALLCLOCK_MODULES entry: module no longer "
                        "reads the host clock — shrink the allowlist",
                    )
                )
        return findings


class UnsortedSerializationRule(Rule):
    """D104: every JSON emission must be canonical (``sort_keys=True``).

    Serialized artifacts (sweep-point records, cache entries, trace
    metadata) are compared, hashed, and diffed; canonical key order keeps
    byte-comparisons and content hashes stable across dict construction
    order.
    """

    code = "D104"
    symbol = "unsorted-serialization"
    description = "json.dump/json.dumps must pass sort_keys=True"

    def check(self, module: SourceModule, ctx: ProjectContext) -> List[Violation]:
        imports = build_import_map(module.tree)
        findings: List[Violation] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = call_name(node, imports)
            if qualified not in ("json.dump", "json.dumps"):
                continue
            sorted_keys = any(
                keyword.arg == "sort_keys"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
                for keyword in node.keywords
            )
            if not sorted_keys:
                findings.append(
                    self.violation(
                        module,
                        node,
                        f"{qualified}(...) without sort_keys=True — serialized "
                        "output must be canonical",
                    )
                )
        return findings
