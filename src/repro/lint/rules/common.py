"""Shared AST helpers for the rule implementations."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Optional, Set


@dataclass(slots=True)
class ImportMap:
    """Which local names are bound to which modules/objects in one file."""

    #: Local names bound to whole modules: ``{"np": "numpy", "time": "time"}``.
    modules: Dict[str, str] = field(default_factory=dict)
    #: Local names bound via ``from m import x [as y]``: ``{"y": ("m", "x")}``.
    objects: Dict[str, tuple] = field(default_factory=dict)

    def aliases_of(self, module: str) -> Set[str]:
        """Local names referring to ``module`` itself."""
        return {local for local, target in self.modules.items() if target == module}

    def object_origin(self, local: str) -> Optional[tuple]:
        """``(module, original_name)`` if ``local`` was from-imported."""
        return self.objects.get(local)


def build_import_map(tree: ast.AST) -> ImportMap:
    imports = ImportMap()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                # ``import numpy.random`` binds ``numpy``; record the root.
                target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                imports.modules[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                local = alias.asname or alias.name
                imports.objects[local] = (node.module, alias.name)
    return imports


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call, imports: ImportMap) -> Optional[str]:
    """Fully-qualified dotted name of a call target, resolved via imports.

    ``np.random.default_rng(...)`` -> ``numpy.random.default_rng`` when
    ``np`` is bound to numpy; ``perf_counter()`` -> ``time.perf_counter``
    when from-imported.  ``None`` when the target is not a plain chain.
    """
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    return resolve_dotted(dotted, imports)


def resolve_dotted(dotted: str, imports: ImportMap) -> str:
    """Expand the leading segment of a dotted chain through the imports."""
    head, _, tail = dotted.partition(".")
    origin = imports.object_origin(head)
    if origin is not None:
        module, original = origin
        base = f"{module}.{original}"
        return f"{base}.{tail}" if tail else base
    module_target = imports.modules.get(head)
    if module_target is not None:
        return f"{module_target}.{tail}" if tail else module_target
    return dotted


def iteration_targets(tree: ast.AST):
    """Yield every expression that is directly iterated (for / comprehension)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.For):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for generator in node.generators:
                yield generator.iter
