"""Inline suppression comments: ``# repro-lint: disable=CODE(reason)``.

A suppression waives findings of one rule on one line.  The reason is
mandatory — a bare ``disable=D103`` or ``disable=D103()`` is itself a
finding (``X101``) — and suppressions that waive nothing are reported as
``X102`` so stale allowlists rot away instead of accumulating.

Placement:

* trailing a code line — applies to findings on that line;
* on a standalone comment line — applies to the next code line (useful
  when the offending line is already long).

Multiple rules may be waived in one comment, comma-separated::

    # repro-lint: disable=D102(order cannot leak), H302(mirror cache)
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.lint.violations import Violation

#: The directive marker; anything after ``disable=`` is the item list.
_DIRECTIVE_RE = re.compile(r"#\s*repro-lint:\s*(.*)$")
_DISABLE_RE = re.compile(r"disable\s*=\s*(.*)$")
#: One suppression item: a rule code or symbol, with a mandatory reason.
_ITEM_RE = re.compile(r"([A-Z]\d{3}|[a-z][a-z0-9-]*)\s*\(([^()]*)\)")
#: Used to detect leftover junk between/after items.
_ITEM_SPLIT_RE = re.compile(r"\s*,\s*")


@dataclass(slots=True)
class Suppression:
    """One parsed ``disable=`` item."""

    #: Rule code or symbol exactly as written in the comment.
    key: str
    #: The free-text justification (mandatory, non-empty).
    reason: str
    #: Line the comment itself sits on.
    comment_line: int
    #: Line whose findings this suppression waives.
    target_line: int
    #: Set by the engine when the suppression waived at least one finding.
    used: bool = field(default=False)
    #: Canonical rule code of the waived finding (set alongside ``used``),
    #: so budget accounting is stable whether the source wrote the code or
    #: the symbol form.
    resolved_code: Optional[str] = field(default=None)


def scan(source: str, path: str) -> Tuple[List[Suppression], List[Violation]]:
    """Extract suppressions (and malformed-directive findings) from a file.

    Returns ``(suppressions, violations)`` where violations are ``X101``
    findings for directives that do not parse or lack a reason.
    """
    suppressions: List[Suppression] = []
    violations: List[Violation] = []
    lines = source.splitlines()
    pending: List[Tuple[int, str]] = []  # standalone comments awaiting a code line

    def flush_pending(code_line: int) -> None:
        for comment_line, items in pending:
            _parse_items(items, path, comment_line, code_line, suppressions, violations)
        pending.clear()

    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        # The AST parse will report the syntax error; nothing to scan.
        return [], []

    for token in tokens:
        if token.type == tokenize.COMMENT:
            match = _DIRECTIVE_RE.search(token.string)
            if match is None:
                continue
            body = match.group(1).strip()
            disable = _DISABLE_RE.match(body)
            if disable is None:
                violations.append(
                    _malformed(path, token.start[0], f"unrecognized directive {body!r}")
                )
                continue
            line_no = token.start[0]
            before = lines[line_no - 1][: token.start[1]] if line_no <= len(lines) else ""
            if before.strip():
                # Trailing comment: applies to this line.
                _parse_items(
                    disable.group(1), path, line_no, line_no, suppressions, violations
                )
            else:
                # Standalone comment: applies to the next code line.
                pending.append((line_no, disable.group(1)))
        elif token.type not in (
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
        ):
            if pending:
                flush_pending(token.start[0])
    # Standalone directives at EOF waive nothing; report them as malformed.
    for comment_line, _items in pending:
        violations.append(
            _malformed(path, comment_line, "standalone suppression with no following code line")
        )
    return suppressions, violations


def _parse_items(
    items: str,
    path: str,
    comment_line: int,
    target_line: int,
    suppressions: List[Suppression],
    violations: List[Violation],
) -> None:
    items = items.strip()
    if not items:
        violations.append(_malformed(path, comment_line, "empty disable= list"))
        return
    consumed_any = False
    leftover = items
    for match in _ITEM_RE.finditer(items):
        consumed_any = True
        key, reason = match.group(1), match.group(2).strip()
        leftover = leftover.replace(match.group(0), "", 1)
        if not reason:
            violations.append(
                _malformed(
                    path,
                    comment_line,
                    f"suppression of {key} has no reason — write {key}(why this is safe)",
                )
            )
            continue
        suppressions.append(
            Suppression(
                key=key,
                reason=reason,
                comment_line=comment_line,
                target_line=target_line,
            )
        )
    leftover = leftover.replace(",", "").strip()
    if not consumed_any or leftover:
        detail = leftover if leftover else items
        violations.append(
            _malformed(
                path,
                comment_line,
                f"cannot parse {detail!r} — expected CODE(reason)[, CODE(reason)...]",
            )
        )


def _malformed(path: str, line: int, detail: str) -> Violation:
    return Violation(
        path=path,
        line=line,
        col=0,
        code="X101",
        symbol="malformed-suppression",
        message=f"malformed repro-lint directive: {detail}",
    )


def match_suppression(
    suppressions: List[Suppression],
    violation: Violation,
    symbol_of_code: dict,
    code_of_symbol: dict,
) -> Optional[Suppression]:
    """The first suppression that waives ``violation``, if any."""
    for suppression in suppressions:
        if suppression.target_line != violation.line:
            continue
        key = suppression.key
        if key == violation.code or key == violation.symbol:
            return suppression
        # Allow the symbol form for a code key and vice versa.
        if symbol_of_code.get(key) == violation.symbol:
            return suppression
        if code_of_symbol.get(key) == violation.code:
            return suppression
    return None
