"""Main-memory model.

A deliberately simple DRAM model: a fixed access latency plus a bandwidth
term.  Each L4 chip owns a set of DDR3 channels; the model tracks per-chip
channel occupancy so that memory-bandwidth-bound workloads (e.g. spmv) see
queueing when many cores stream data, while latency-bound workloads see the
configured latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.sim.config import MemoryConfig, SystemConfig


@dataclass(slots=True)
class MemoryAccessTiming:
    """Timing outcome of one main-memory access."""

    latency: int
    queue_delay: float


class MainMemoryModel:
    """Per-L4-chip DRAM channels with a simple occupancy-based queue model."""

    __slots__ = (
        "config",
        "mem",
        "_channel_busy_until",
        "accesses",
        "bytes_transferred",
    )

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.mem: MemoryConfig = config.memory
        self._channel_busy_until: Dict[int, List[float]] = {}
        self.accesses = 0
        self.bytes_transferred = 0

    def _channels(self, l4_chip: int) -> List[float]:
        channels = self._channel_busy_until.get(l4_chip)
        if channels is None:
            channels = [0.0] * self.mem.channels_per_l4_chip
            self._channel_busy_until[l4_chip] = channels
        return channels

    def access(self, l4_chip: int, now: float, line_bytes: int) -> MemoryAccessTiming:
        """Account one line fill/writeback at ``l4_chip`` starting at ``now``."""
        channels = self._channels(l4_chip)
        # Pick the channel that frees up first (FR-FCFS approximation); a
        # plain loop over the handful of channels beats min() with a key.
        channel_index = 0
        best = channels[0]
        for index in range(1, len(channels)):
            busy_until = channels[index]
            if busy_until < best:
                best = busy_until
                channel_index = index
        start = max(now, best)
        queue_delay = start - now
        transfer = line_bytes / self.mem.channel_bandwidth_bytes_per_cycle
        channels[channel_index] = start + transfer
        self.accesses += 1
        self.bytes_transferred += line_bytes
        return MemoryAccessTiming(
            latency=int(self.mem.latency + queue_delay), queue_delay=queue_delay
        )

    def reset(self) -> None:
        self._channel_busy_until.clear()
        self.accesses = 0
        self.bytes_transferred = 0
