"""Cache hierarchy assembly for the simulated machine.

:class:`CacheHierarchy` instantiates the Table 1 machine: per-core private L1D
and L2 arrays, one banked L3 array per processor chip, one banked L4 array per
L4 chip, the DRAM model, and the interconnect.  Protocol engines use it to
decide where an access hits, which lines get evicted, and what the
level-by-level latency of a given protocol action is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.hierarchy.cache import SetAssociativeCache
from repro.hierarchy.memory import MainMemoryModel
from repro.interconnect.network import InterconnectModel
from repro.sim.config import SystemConfig


@dataclass(slots=True)
class PrivateLookupResult:
    """Where an access hit in the private hierarchy."""

    level: Optional[str]  # "L1", "L2", or None for a private miss

    @property
    def is_hit(self) -> bool:
        return self.level is not None


@dataclass(slots=True)
class EvictionNotice:
    """A line displaced from a private cache by a capacity eviction."""

    core_id: int
    line_addr: int
    from_level: str


class CacheHierarchy:
    """All cache arrays of the simulated machine plus placement helpers."""

    __slots__ = ("config", "l1", "l2", "l3", "l4", "memory", "interconnect")

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.l1 = [
            SetAssociativeCache(config.l1d, name=f"l1d.{core}")
            for core in range(config.n_cores)
        ]
        self.l2 = [
            SetAssociativeCache(config.l2, name=f"l2.{core}")
            for core in range(config.n_cores)
        ]
        self.l3 = [
            SetAssociativeCache(config.l3, name=f"l3.chip{chip}")
            for chip in range(config.n_chips)
        ]
        self.l4 = [
            SetAssociativeCache(config.l4, name=f"l4.chip{chip}")
            for chip in range(config.n_l4_chips)
        ]
        self.memory = MainMemoryModel(config)
        self.interconnect = InterconnectModel(config)

    # -- private caches -------------------------------------------------------

    def private_lookup_level(self, core_id: int, line_addr: int) -> int:
        """Check the core's L1 then L2; refresh LRU on a hit.

        Returns 1 for an L1 hit, 2 for an L2 hit, 0 for a private miss.  This
        is the hot-path form used by the protocol engines: it performs exactly
        the same lookups, statistics updates, and L1 refills as
        :meth:`private_lookup` but avoids allocating a result object.

        WARNING: faster hand-inlined twins of this probe live in
        ``CoherenceProtocol._private_level`` and the inline block in
        ``MulticoreSimulator.run``; any semantic change here must be applied
        to all three (the golden-equivalence suite catches divergence).

        An L2 hit also fills the L1 (possibly evicting an L1 victim, which is
        harmless here because the L2 is inclusive of the L1).
        """
        if self.l1[core_id].lookup(line_addr) is not None:
            return 1
        if self.l2[core_id].lookup(line_addr) is not None:
            self.l1[core_id].insert(line_addr)
            return 2
        return 0

    def private_lookup(self, core_id: int, line_addr: int) -> PrivateLookupResult:
        """Allocating wrapper around :meth:`private_lookup_level`."""
        level = self.private_lookup_level(core_id, line_addr)
        if level == 1:
            return PrivateLookupResult("L1")
        if level == 2:
            return PrivateLookupResult("L2")
        return PrivateLookupResult(None)

    def private_fill_victim(self, core_id: int, line_addr: int) -> Optional[int]:
        """Install a line into the core's L1 and L2; return the L2 victim.

        Only L2 victims matter for coherence: the L2 is inclusive of the L1,
        so an L2 eviction implies the line is gone from the private hierarchy
        and the directory must be told (triggering writebacks or partial
        reductions).  L1 victims remain resident in the L2.  At most one line
        can be displaced per fill, so the victim is returned directly (or
        ``None``); this is the hot-path form used by the protocol engines.
        """
        victim_addr: Optional[int] = None
        l2_victim = self.l2[core_id].insert(line_addr)
        if l2_victim is not None:
            # Maintain inclusion: drop the victim from the L1 as well.
            victim_addr = l2_victim.line_addr
            self.l1[core_id].invalidate(victim_addr)
        self.l1[core_id].insert(line_addr)
        return victim_addr

    def private_fill(self, core_id: int, line_addr: int) -> List[EvictionNotice]:
        """Allocating wrapper around :meth:`private_fill_victim`."""
        victim_addr = self.private_fill_victim(core_id, line_addr)
        if victim_addr is None:
            return []
        return [EvictionNotice(core_id=core_id, line_addr=victim_addr, from_level="L2")]

    def private_invalidate(self, core_id: int, line_addr: int) -> None:
        """Remove a line from the core's private caches (coherence action)."""
        self.l1[core_id].invalidate(line_addr)
        self.l2[core_id].invalidate(line_addr)

    def private_present(self, core_id: int, line_addr: int) -> bool:
        return (
            self.l2[core_id].peek(line_addr) is not None
            or self.l1[core_id].peek(line_addr) is not None
        )

    # -- shared caches --------------------------------------------------------

    def l3_chip_of_core(self, core_id: int) -> int:
        return self.config.chip_of_core(core_id)

    def l3_lookup(self, chip_id: int, line_addr: int) -> bool:
        return self.l3[chip_id].lookup(line_addr) is not None

    def l3_fill(self, chip_id: int, line_addr: int) -> Optional[int]:
        """Install a line into a chip's L3; return the victim line if any."""
        victim = self.l3[chip_id].insert(line_addr)
        return victim.line_addr if victim is not None else None

    def l4_chip_of_line(self, line_addr: int) -> int:
        return self.config.l4_home_chip(line_addr)

    def l4_lookup(self, l4_chip: int, line_addr: int) -> bool:
        return self.l4[l4_chip].lookup(line_addr) is not None

    def l4_fill(self, l4_chip: int, line_addr: int) -> Optional[int]:
        victim = self.l4[l4_chip].insert(line_addr)
        return victim.line_addr if victim is not None else None

    # -- statistics -----------------------------------------------------------

    def reset_statistics(self) -> None:
        for cache in (*self.l1, *self.l2, *self.l3, *self.l4):
            cache.reset_statistics()
        self.memory.reset()
        self.interconnect.reset()

    def network_summary(self) -> Dict[str, object]:
        """Interconnect topology and traffic digest (diagnostics and tests).

        Includes the per-message-type byte breakdown, and — when the epoch
        contention model is enabled — whether contention charging is active.
        Per-link utilization needs the run length and is reported through
        ``SimulationResult.link_stats`` instead.
        """
        traffic = self.interconnect.traffic
        return {
            "topology": self.interconnect.topology.name,
            "contention": self.interconnect.contention is not None,
            "on_chip_bytes": traffic.on_chip_bytes,
            "off_chip_bytes": traffic.off_chip_bytes,
            "bytes_by_type": dict(traffic.bytes_by_type),
        }

    def cache_summary(self) -> Dict[str, float]:
        """Aggregate hit rates per level, for diagnostics and tests."""

        def rate(caches: List[SetAssociativeCache]) -> float:
            hits = sum(cache.hits for cache in caches)
            misses = sum(cache.misses for cache in caches)
            total = hits + misses
            return hits / total if total else 0.0

        return {
            "l1_hit_rate": rate(self.l1),
            "l2_hit_rate": rate(self.l2),
            "l3_hit_rate": rate(self.l3),
            "l4_hit_rate": rate(self.l4),
        }
