"""Cache hierarchy substrate: cache arrays, DRAM model, machine assembly."""

from repro.hierarchy.cache import CacheLineInfo, SetAssociativeCache
from repro.hierarchy.memory import MainMemoryModel, MemoryAccessTiming
from repro.hierarchy.system import CacheHierarchy, EvictionNotice, PrivateLookupResult

__all__ = [
    "CacheHierarchy",
    "CacheLineInfo",
    "EvictionNotice",
    "MainMemoryModel",
    "MemoryAccessTiming",
    "PrivateLookupResult",
    "SetAssociativeCache",
]
