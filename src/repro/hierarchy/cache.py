"""Set-associative cache arrays with LRU replacement.

These arrays track only *presence* and per-line metadata; data values live in
the protocol engines (which need them for functional checking of commutative
reductions).  Both private caches (L1/L2) and shared banked caches (L3/L4)
are built from :class:`SetAssociativeCache`.

The arrays sit on the simulator's per-access critical path, so they are
written for speed: sets are materialised lazily (constructing a 32 MB L3
allocates nothing until lines arrive), geometry is precomputed once, and the
per-line records are slotted plain objects rather than dataclasses.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.sim.config import CacheConfig


class CacheLineInfo:
    """Metadata attached to a resident cache line.

    ``metadata`` is ``None`` until a caller attaches something, so the common
    case (no metadata) allocates no dict.
    """

    __slots__ = ("line_addr", "metadata", "last_use")

    def __init__(
        self, line_addr: int, metadata: Optional[dict] = None, last_use: int = 0
    ) -> None:
        self.line_addr = line_addr
        self.metadata = metadata
        self.last_use = last_use

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheLineInfo(line_addr={self.line_addr:#x}, "
            f"metadata={self.metadata}, last_use={self.last_use})"
        )


class SetAssociativeCache:
    """A set-associative cache array with true-LRU replacement.

    The array maps line addresses to :class:`CacheLineInfo`.  Insertion may
    evict the least-recently-used line in the set; the evicted line's info is
    returned so callers can perform writebacks or partial reductions.
    """

    __slots__ = (
        "config",
        "name",
        "_sets",
        "_num_sets",
        "_ways",
        "_tick",
        "hits",
        "misses",
        "evictions",
    )

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self._num_sets = config.num_sets
        self._ways = config.ways
        #: Lazily materialised sets: set index -> {line_addr: CacheLineInfo}.
        self._sets: Dict[int, Dict[int, CacheLineInfo]] = {}
        self._tick = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __contains__(self, line_addr: int) -> bool:
        cache_set = self._sets.get(line_addr % self._num_sets)
        return cache_set is not None and line_addr in cache_set

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets.values())

    def _set_index(self, line_addr: int) -> int:
        return line_addr % self._num_sets

    def _set_for(self, line_addr: int) -> Dict[int, CacheLineInfo]:
        index = line_addr % self._num_sets
        cache_set = self._sets.get(index)
        if cache_set is None:
            cache_set = self._sets[index] = {}
        return cache_set

    def lookup(self, line_addr: int, *, touch: bool = True) -> Optional[CacheLineInfo]:
        """Return the line's info if resident; update LRU and hit statistics."""
        cache_set = self._sets.get(line_addr % self._num_sets)
        info = cache_set.get(line_addr) if cache_set is not None else None
        if info is None:
            self.misses += 1
            return None
        self.hits += 1
        if touch:
            self._tick = tick = self._tick + 1
            info.last_use = tick
        return info

    def peek(self, line_addr: int) -> Optional[CacheLineInfo]:
        """Return the line's info without touching LRU or statistics."""
        cache_set = self._sets.get(line_addr % self._num_sets)
        return cache_set.get(line_addr) if cache_set is not None else None

    def probe_parts(self) -> Tuple[Dict[int, Dict[int, CacheLineInfo]], int]:
        """``(sets, num_sets)`` for hoisted inline probes (flattened engines).

        The retirement engines resolve millions of lookups per run, so they
        hoist the set dictionary and modulus once and inline the two-step
        probe (``sets.get(addr % num_sets)`` then ``.get(addr)``) instead of
        paying a method call per access.  Contract for callers: a *hit*
        must replay :meth:`lookup` exactly — increment :attr:`hits`,
        advance the LRU clock (``_tick``), and stamp ``info.last_use`` —
        and a *miss* must increment :attr:`misses`; otherwise LRU order and
        hit statistics drift from the scalar path and bit-identity breaks.
        The returned dictionary is live shared state, never a copy.
        """
        return self._sets, self._num_sets

    def insert(self, line_addr: int, metadata: Optional[dict] = None) -> Optional[CacheLineInfo]:
        """Insert a line, returning the victim's info if an eviction occurred.

        Inserting a line that is already resident refreshes its LRU position
        and merges the provided metadata.
        """
        cache_set = self._set_for(line_addr)
        existing = cache_set.get(line_addr)
        if existing is not None:
            self._tick = tick = self._tick + 1
            existing.last_use = tick
            if metadata:
                if existing.metadata is None:
                    existing.metadata = dict(metadata)
                else:
                    existing.metadata.update(metadata)
            return None

        victim: Optional[CacheLineInfo] = None
        if len(cache_set) >= self._ways:
            # True-LRU victim: first line with the smallest last_use (a plain
            # loop; a min() with a key lambda costs a call per resident line).
            victim_addr = -1
            best_use = None
            # repro-lint: disable=D102(LRU tie-break deliberately follows set insertion order; golden fingerprints pin this exact victim choice)
            for addr, info in cache_set.items():
                last_use = info.last_use
                if best_use is None or last_use < best_use:
                    best_use = last_use
                    victim_addr = addr
            victim = cache_set.pop(victim_addr)
            self.evictions += 1

        self._tick = tick = self._tick + 1
        cache_set[line_addr] = CacheLineInfo(
            line_addr, dict(metadata) if metadata else None, tick
        )
        return victim

    def invalidate(self, line_addr: int) -> Optional[CacheLineInfo]:
        """Remove a line (coherence invalidation); return its info if present."""
        cache_set = self._sets.get(line_addr % self._num_sets)
        if cache_set is None:
            return None
        return cache_set.pop(line_addr, None)

    def resident_lines(self) -> Iterator[CacheLineInfo]:
        """Iterate over all resident lines (order unspecified)."""
        # repro-lint: disable=D102(documented order-unspecified iterator; consumers aggregate order-insensitively)
        for cache_set in self._sets.values():
            yield from cache_set.values()

    def occupancy(self) -> float:
        """Fraction of the cache's capacity currently occupied."""
        return len(self) / max(1, self.config.num_lines)

    def reset_statistics(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


# ---------------------------------------------------------------------------
# Flat tag mirror for the batched simulation kernel
# ---------------------------------------------------------------------------

#: Tag value marking an empty way in a :class:`TagArray`.
TAG_EMPTY = np.uint64(0xFFFF_FFFF_FFFF_FFFF)

#: Per-way coherence-state codes stored in :attr:`TagArray.state`.  These
#: deliberately mirror the MESI/MEUSI stable states without importing the
#: enum: 0 marks an untracked or absent line.
STATE_ABSENT = 0
STATE_SHARED = 1
STATE_EXCLUSIVE = 2
STATE_MODIFIED = 3
STATE_UPDATE = 4

#: Sentinel for "no classifiable update op" in :attr:`TagArray.uop`.
UOP_NONE = 255


class TagArray:
    """Flat NumPy mirror of one :class:`SetAssociativeCache`'s residency.

    The batched simulation kernel (:mod:`repro.sim.kernel`) classifies whole
    chunks of a columnar trace at once: "is this access a private L1 hit in a
    stable state?" must be answerable with array arithmetic, which the
    object cache's dict-of-dicts cannot do.  A ``TagArray`` holds, per
    (set, way):

    * ``tags`` — the resident line address (:data:`TAG_EMPTY` if the way is
      empty),
    * ``state`` — the owning core's stable state for the line, as one of the
      ``STATE_*`` codes above,
    * ``uop`` — for ``STATE_UPDATE`` lines, the index of the directory
      entry's commutative op when the line can buffer same-type updates
      locally (:data:`UOP_NONE` otherwise).

    The mirror tracks *membership and classification inputs only* — the
    object cache remains authoritative for LRU order and statistics.  It is
    kept coherent lazily: the kernel rebuilds it from the object cache at
    slow-path boundaries (any protocol action that may move lines) and
    applies cheap incremental updates for the two hot mutations that happen
    between them (an L2-hit promotion into the L1, and a U-line gaining a
    classifiable op).  Way order within a set is arbitrary; only membership
    matters.
    """

    __slots__ = ("num_sets", "ways", "tags", "state", "uop")

    def __init__(self, config: CacheConfig) -> None:
        self.num_sets = config.num_sets
        self.ways = config.ways
        self.tags = np.full((self.num_sets, self.ways), TAG_EMPTY, dtype=np.uint64)
        self.state = np.zeros((self.num_sets, self.ways), dtype=np.uint8)
        self.uop = np.full((self.num_sets, self.ways), UOP_NONE, dtype=np.uint8)

    def clear(self) -> None:
        """Empty every way (start of a rebuild)."""
        self.tags.fill(TAG_EMPTY)
        self.state.fill(STATE_ABSENT)
        self.uop.fill(UOP_NONE)

    def fill_way(self, set_index: int, way: int, line_addr: int, state: int, uop: int) -> None:
        """Install one line during a rebuild (no victim handling)."""
        self.tags[set_index, way] = line_addr
        self.state[set_index, way] = state
        self.uop[set_index, way] = uop

    def place(
        self, line_addr: int, state: int, uop: int, victim_addr: Optional[int] = None
    ) -> bool:
        """Install a line, replacing ``victim_addr``'s way (or an empty one).

        Mirrors an L1 fill performed by the object cache: the caller learned
        the victim (if any) from :meth:`SetAssociativeCache.insert`.  Returns
        False when no slot could be found — the mirror has drifted from the
        object cache and the caller must mark it stale for a rebuild.
        """
        set_index = line_addr % self.num_sets
        row = self.tags[set_index]
        if victim_addr is not None:
            slots = np.flatnonzero(row == np.uint64(victim_addr))
        else:
            slots = np.flatnonzero(row == TAG_EMPTY)
        if not slots.size:
            return False
        way = int(slots[0])
        self.fill_way(set_index, way, line_addr, state, uop)
        return True

    def set_uop(self, line_addr: int, uop: int) -> None:
        """Update the op code of a resident line (no-op if absent)."""
        set_index = line_addr % self.num_sets
        row = self.tags[set_index]
        slots = np.flatnonzero(row == np.uint64(line_addr))
        if slots.size:
            self.uop[set_index, int(slots[0])] = uop

    def update_line(self, line_addr: int, state: int, uop: int) -> None:
        """Repair one line after a cross-core coherence action.

        ``state == STATE_ABSENT`` removes the line (invalidation); any other
        state updates the resident way in place (downgrade).  A line the
        mirror does not hold is a no-op — cross-core actions never *add*
        lines to another core's private cache, so absence stays absence.
        """
        set_index = line_addr % self.num_sets
        row = self.tags[set_index]
        slots = np.flatnonzero(row == np.uint64(line_addr))
        if not slots.size:
            return
        way = int(slots[0])
        if state == STATE_ABSENT:
            row[way] = TAG_EMPTY
            self.state[set_index, way] = STATE_ABSENT
            self.uop[set_index, way] = UOP_NONE
        else:
            self.state[set_index, way] = state
            self.uop[set_index, way] = uop

    def resident(self, line_addr: int) -> bool:
        """Membership probe (tests and debugging; the kernel uses arrays)."""
        row = self.tags[line_addr % self.num_sets]
        return bool((row == np.uint64(line_addr)).any())
