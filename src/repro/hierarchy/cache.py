"""Set-associative cache arrays with LRU replacement.

These arrays track only *presence* and per-line metadata; data values live in
the protocol engines (which need them for functional checking of commutative
reductions).  Both private caches (L1/L2) and shared banked caches (L3/L4)
are built from :class:`SetAssociativeCache`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.sim.config import CacheConfig


@dataclass
class CacheLineInfo:
    """Metadata attached to a resident cache line."""

    line_addr: int
    metadata: dict = field(default_factory=dict)
    last_use: int = 0


class SetAssociativeCache:
    """A set-associative cache array with true-LRU replacement.

    The array maps line addresses to :class:`CacheLineInfo`.  Insertion may
    evict the least-recently-used line in the set; the evicted line's info is
    returned so callers can perform writebacks or partial reductions.
    """

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self._sets: List[Dict[int, CacheLineInfo]] = [
            {} for _ in range(config.num_sets)
        ]
        self._tick = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __contains__(self, line_addr: int) -> bool:
        return line_addr in self._sets[self._set_index(line_addr)]

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def _set_index(self, line_addr: int) -> int:
        return line_addr % self.config.num_sets

    def _next_tick(self) -> int:
        self._tick += 1
        return self._tick

    def lookup(self, line_addr: int, *, touch: bool = True) -> Optional[CacheLineInfo]:
        """Return the line's info if resident; update LRU and hit statistics."""
        cache_set = self._sets[self._set_index(line_addr)]
        info = cache_set.get(line_addr)
        if info is None:
            self.misses += 1
            return None
        self.hits += 1
        if touch:
            info.last_use = self._next_tick()
        return info

    def peek(self, line_addr: int) -> Optional[CacheLineInfo]:
        """Return the line's info without touching LRU or statistics."""
        return self._sets[self._set_index(line_addr)].get(line_addr)

    def insert(self, line_addr: int, metadata: Optional[dict] = None) -> Optional[CacheLineInfo]:
        """Insert a line, returning the victim's info if an eviction occurred.

        Inserting a line that is already resident refreshes its LRU position
        and merges the provided metadata.
        """
        set_index = self._set_index(line_addr)
        cache_set = self._sets[set_index]
        existing = cache_set.get(line_addr)
        if existing is not None:
            existing.last_use = self._next_tick()
            if metadata:
                existing.metadata.update(metadata)
            return None

        victim: Optional[CacheLineInfo] = None
        if len(cache_set) >= self.config.ways:
            victim_addr = min(cache_set, key=lambda addr: cache_set[addr].last_use)
            victim = cache_set.pop(victim_addr)
            self.evictions += 1

        cache_set[line_addr] = CacheLineInfo(
            line_addr=line_addr,
            metadata=dict(metadata or {}),
            last_use=self._next_tick(),
        )
        return victim

    def invalidate(self, line_addr: int) -> Optional[CacheLineInfo]:
        """Remove a line (coherence invalidation); return its info if present."""
        cache_set = self._sets[self._set_index(line_addr)]
        return cache_set.pop(line_addr, None)

    def resident_lines(self) -> Iterator[CacheLineInfo]:
        """Iterate over all resident lines (order unspecified)."""
        for cache_set in self._sets:
            yield from cache_set.values()

    def occupancy(self) -> float:
        """Fraction of the cache's capacity currently occupied."""
        return len(self) / max(1, self.config.num_lines)

    def reset_statistics(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
