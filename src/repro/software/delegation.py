"""Delegation software baseline: the software counterpart of RMOs (Sec. 2.2).

Delegation schemes partition shared data among threads and send each update to
the owning thread through a shared-memory queue; the owner applies updates to
its partition locally.  Like RMOs, delegation avoids ping-ponging the data
itself but pays per-update queue traffic and is limited by the owner's
throughput.

The model generates the access stream of a simple single-producer/single-
consumer mailbox per (sender, owner) pair: the sender writes a queue entry
(store) and bumps the tail pointer (store); the owner later reads the entry
and applies the update to its local partition with plain read-modify-writes.
Owner-side work is appended as a separate phase so the simulator's barrier
places it after the producers finish, which models the bulk-synchronous way
delegation is typically used for reductions.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.core.commutative import CommutativeOp
from repro.sim.access import MemoryAccess, Trace, WorkloadTrace
from repro.workloads.base import AddressMap


class DelegationBuilder:
    """Builds delegation-style traces from logical per-core update streams."""

    #: Bytes per queue entry (address + value + sequence number).
    ENTRY_BYTES = 24

    def __init__(
        self,
        addresses: AddressMap,
        n_cores: int,
        *,
        owner_of_element: Callable[[int], int],
        element_address: Callable[[int], int],
        op: CommutativeOp = CommutativeOp.ADD_I64,
    ) -> None:
        self.addresses = addresses
        self.n_cores = n_cores
        self.owner_of_element = owner_of_element
        self.element_address = element_address
        self.op = op

    def _queue_entry_address(self, sender: int, owner: int, index: int) -> int:
        return self.addresses.element(
            f"deleg_queue_{sender}_{owner}", index, self.ENTRY_BYTES
        )

    def build(
        self, per_core_updates: Sequence[Sequence[Tuple[int, object, int]]]
    ) -> WorkloadTrace:
        """Produce a two-phase delegation trace.

        ``per_core_updates[core]`` lists ``(element_index, value, think)``
        updates that ``core`` wants performed.  Phase 1: senders enqueue
        updates into per-owner mailboxes.  Phase 2: owners drain their
        mailboxes and apply the updates to their partition.
        """
        if len(per_core_updates) != self.n_cores:
            raise ValueError("need one update stream per core")

        mailboxes: Dict[int, List[Tuple[int, int, object]]] = {
            owner: [] for owner in range(self.n_cores)
        }
        per_core: List[Trace] = [[] for _ in range(self.n_cores)]
        queue_positions: Dict[Tuple[int, int], int] = {}

        # Phase 1: producers enqueue.
        for sender, updates in enumerate(per_core_updates):
            trace = per_core[sender]
            for element, value, think in updates:
                owner = self.owner_of_element(element)
                if owner == sender:
                    # Local elements are updated directly, no queueing needed.
                    address = self.element_address(element)
                    trace.append(MemoryAccess.load(address, think=think))
                    trace.append(MemoryAccess.store(address, None, think=1))
                    continue
                index = queue_positions.get((sender, owner), 0)
                queue_positions[(sender, owner)] = index + 1
                entry = self._queue_entry_address(sender, owner, index)
                trace.append(MemoryAccess.store(entry, None, think=think))
                trace.append(MemoryAccess.store(entry + 8, None, think=1))
                mailboxes[owner].append((sender, index, (element, value)))
        phase1 = [len(trace) for trace in per_core]

        # Phase 2: owners drain their mailboxes.
        for owner, entries in mailboxes.items():
            trace = per_core[owner]
            for sender, index, (element, value) in entries:
                entry = self._queue_entry_address(sender, owner, index)
                trace.append(MemoryAccess.load(entry, think=4))
                address = self.element_address(element)
                trace.append(MemoryAccess.load(address, think=2))
                trace.append(MemoryAccess.store(address, None, think=1))

        return WorkloadTrace(
            name="delegation",
            per_core=per_core,
            params={"n_cores": self.n_cores},
            phase_boundaries=[phase1],
        )
