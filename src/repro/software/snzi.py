"""Scalable Non-Zero Indicator (SNZI) software baseline.

SNZI keeps a global reference count in a tree of counters: threads increment
and decrement at their own leaf and propagate an update to the parent only
when the leaf's surplus crosses zero, so readers only need to check the root
to learn whether the count is non-zero.  This makes non-zero checks cheap and
spreads update contention across leaves, at the cost of extra space and of
propagation traffic whenever leaf surpluses oscillate around zero (which is
exactly the low-count regime of the paper's Fig. 13a, where SNZI loses to a
flat counter).

This model generates the *memory access stream* a SNZI implementation would
issue — atomic updates to leaf/intermediate nodes, plus a load of the root on
queries — so the coherence simulator can compare it against flat XADD counters
and COUP commutative updates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.commutative import CommutativeOp
from repro.sim.access import MemoryAccess, Trace
from repro.workloads.base import AddressMap


@dataclass
class SnziNodeState:
    """Surplus held at one SNZI tree node for one shared object."""

    surplus: int = 0


class SnziTree:
    """A binary SNZI tree with one leaf per thread, per shared object.

    The functional model tracks per-node surpluses so the generated access
    stream contains parent propagation exactly when a real SNZI would perform
    it (leaf surplus 0 -> 1 on arrival, 1 -> 0 on departure).
    """

    def __init__(
        self,
        addresses: AddressMap,
        object_id: int,
        n_threads: int,
        *,
        node_bytes: int = 64,
    ) -> None:
        self.addresses = addresses
        self.object_id = object_id
        self.n_leaves = max(1, n_threads)
        self.node_bytes = node_bytes
        # Heap-style tree layout: node 0 is the root.
        self.n_nodes = 2 * self.n_leaves - 1
        self._state: Dict[int, SnziNodeState] = {}

    def _node_state(self, node: int) -> SnziNodeState:
        state = self._state.get(node)
        if state is None:
            state = SnziNodeState()
            self._state[node] = state
        return state

    def _node_address(self, node: int) -> int:
        # Nodes are padded to a cache line each to avoid false sharing, as the
        # SNZI paper recommends; this is part of SNZI's space overhead.
        return self.addresses.element(
            f"snzi_obj{self.object_id}", node, self.node_bytes
        )

    def _leaf_of_thread(self, thread_id: int) -> int:
        return (self.n_nodes - self.n_leaves) + (thread_id % self.n_leaves)

    @staticmethod
    def _parent(node: int) -> int:
        return (node - 1) // 2

    def arrive(self, thread_id: int) -> Trace:
        """Accesses performed by an increment (reference acquisition)."""
        trace: Trace = []
        node = self._leaf_of_thread(thread_id)
        while True:
            state = self._node_state(node)
            trace.append(
                MemoryAccess.atomic(self._node_address(node), CommutativeOp.ADD_I64, 1, think=4)
            )
            state.surplus += 1
            if state.surplus != 1 or node == 0:
                break
            node = self._parent(node)
        return trace

    def depart(self, thread_id: int) -> Trace:
        """Accesses performed by a decrement (reference release)."""
        trace: Trace = []
        node = self._leaf_of_thread(thread_id)
        while True:
            state = self._node_state(node)
            trace.append(
                MemoryAccess.atomic(self._node_address(node), CommutativeOp.ADD_I64, -1, think=4)
            )
            state.surplus -= 1
            if state.surplus != 0 or node == 0:
                break
            node = self._parent(node)
        return trace

    def query(self, _thread_id: int) -> Trace:
        """Accesses performed by a non-zero check (read of the root)."""
        return [MemoryAccess.load(self._node_address(0), think=2)]

    @property
    def footprint_bytes(self) -> int:
        """Space overhead of the tree for this object."""
        return self.n_nodes * self.node_bytes
