"""Refcache software baseline: delayed reference counting with per-thread deltas.

Refcache (RadixVM) batches reference-count updates in a per-thread software
cache (a small hash table of counter deltas) and flushes the deltas to the
global counters at the end of each epoch; an object is freed only after its
global count has remained zero for a full epoch.  This trades memory footprint
and deallocation latency for much cheaper updates.

The model generates the access stream of the per-thread hash table (probe,
update) during the epoch and of the flush (read delta, atomic add to the
global counter) at epoch end, matching the structure the paper compares COUP
against in Fig. 13c.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.commutative import CommutativeOp
from repro.sim.access import MemoryAccess, Trace
from repro.workloads.base import AddressMap


@dataclass
class RefcacheConfig:
    """Sizing of the per-thread delta cache."""

    n_ways: int = 1
    n_slots: int = 4096
    slot_bytes: int = 16  # counter pointer + delta


class RefcacheThreadCache:
    """Per-thread software cache of reference-count deltas."""

    def __init__(
        self,
        addresses: AddressMap,
        thread_id: int,
        config: RefcacheConfig = RefcacheConfig(),
    ) -> None:
        self.addresses = addresses
        self.thread_id = thread_id
        self.config = config
        #: counter id -> accumulated delta (functional bookkeeping).
        self.deltas: Dict[int, int] = {}

    def _slot_address(self, counter_id: int) -> int:
        slot = hash(counter_id) % self.config.n_slots
        return self.addresses.element(
            f"refcache_t{self.thread_id}", slot, self.config.slot_bytes
        )

    def update(self, counter_id: int, delta: int) -> Trace:
        """Accesses performed by one increment/decrement during an epoch.

        A hash-table probe (load of the slot), the delta update (store), plus
        the hashing and tag-check instructions as think time.
        """
        self.deltas[counter_id] = self.deltas.get(counter_id, 0) + delta
        slot = self._slot_address(counter_id)
        return [
            MemoryAccess.load(slot, think=6),
            MemoryAccess.store(slot, None, think=2),
        ]

    def flush(self, global_counter_address) -> Trace:
        """Accesses performed by the end-of-epoch flush.

        For every dirty slot, the thread reads the slot and applies the delta
        to the global counter with an atomic add; slots are then cleared.
        ``global_counter_address`` maps a counter id to its address.
        """
        trace: Trace = []
        for counter_id, delta in sorted(self.deltas.items()):
            trace.append(MemoryAccess.load(self._slot_address(counter_id), think=4))
            trace.append(
                MemoryAccess.atomic(
                    global_counter_address(counter_id), CommutativeOp.ADD_I64, delta, think=2
                )
            )
        self.deltas.clear()
        return trace

    @property
    def footprint_bytes(self) -> int:
        return self.config.n_slots * self.config.slot_bytes
