"""Software baseline models: privatization, delegation, SNZI, Refcache."""

from repro.software.delegation import DelegationBuilder
from repro.software.privatization import (
    PrivatizationLevel,
    PrivatizedReductionBuilder,
    PrivatizedReductionPlan,
    socket_of_core,
)
from repro.software.refcache import RefcacheConfig, RefcacheThreadCache
from repro.software.snzi import SnziTree

__all__ = [
    "DelegationBuilder",
    "PrivatizationLevel",
    "PrivatizedReductionBuilder",
    "PrivatizedReductionPlan",
    "RefcacheConfig",
    "RefcacheThreadCache",
    "SnziTree",
    "socket_of_core",
]
