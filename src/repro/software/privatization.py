"""Software privatization: the software counterpart of COUP (Sec. 2.2, 4.1).

Privatization keeps one replica of the reduction variable per thread (or per
socket); threads update their replica with plain stores (or with atomics, for
socket-level sharing) and a separate *reduction phase* folds all replicas into
the shared result.  The technique removes coherence traffic from the update
phase, at the cost of

* a reduction phase whose work grows with ``n_replicas * n_elements``, and
* an ``n_replicas``-fold increase in memory footprint, which pressures the
  shared caches when the reduction variable is large (Sec. 5.3).

This module provides trace builders that turn a logical stream of updates per
core into the privatized update phase plus reduction phase, so any workload
with reduction-variable structure (histogram is the paper's example) can be
expressed in privatized form.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.core.commutative import CommutativeOp
from repro.sim.access import AccessType, MemoryAccess, Trace
from repro.workloads.base import AddressMap


class PrivatizationLevel(enum.Enum):
    """Granularity at which replicas are created."""

    #: One replica per core ("thread-local" privatization).
    CORE = "core"
    #: One replica per socket, updated with atomics by the socket's cores.
    SOCKET = "socket"


@dataclass
class PrivatizedReductionPlan:
    """Layout of a privatized reduction variable.

    Attributes
    ----------
    n_elements:
        Number of elements in the logical reduction variable.
    element_bytes:
        Size of each element.
    op:
        Commutative operation used to combine per-replica values.
    level:
        Replication granularity.
    n_replicas:
        Number of replicas (cores or sockets).
    """

    n_elements: int
    element_bytes: int
    op: CommutativeOp
    level: PrivatizationLevel
    n_replicas: int

    @property
    def footprint_bytes(self) -> int:
        """Total memory footprint of all replicas (the privatization cost)."""
        return self.n_elements * self.element_bytes * self.n_replicas


class PrivatizedReductionBuilder:
    """Builds per-core traces for a privatized reduction variable.

    The caller supplies, per core, the logical update stream as
    ``(element_index, value, think_instructions)`` tuples.  The builder
    produces:

    * an **update phase**, where each core updates its replica —
      with plain load/store pairs for core-level privatization (the replica
      is thread-private) or atomic adds for socket-level privatization
      (the replica is shared by the socket's cores), and
    * a **reduction phase**, where the elements are partitioned among cores
      and each core folds every replica's value for its elements into the
      shared result array.
    """

    def __init__(
        self,
        plan: PrivatizedReductionPlan,
        addresses: AddressMap,
        *,
        array_name: str = "reduction",
        replica_of_core: Callable[[int], int] = None,
    ) -> None:
        self.plan = plan
        self.addresses = addresses
        self.array_name = array_name
        self.replica_of_core = replica_of_core or (lambda core: core)
        #: Region base address per replica, resolved once (the trace builders
        #: compute replica addresses in O(n_replicas * n_elements) loops).
        self._replica_bases: dict = {}
        self._shared_base: int = None

    def _replica_base(self, replica: int) -> int:
        base = self._replica_bases.get(replica)
        if base is None:
            base = self.addresses.region(f"{self.array_name}_replica_{replica}")
            self._replica_bases[replica] = base
        return base

    def _replica_address(self, replica: int, element: int) -> int:
        return self._replica_base(replica) + element * self.plan.element_bytes

    def _shared_address(self, element: int) -> int:
        if self._shared_base is None:
            self._shared_base = self.addresses.region(f"{self.array_name}_shared")
        return self._shared_base + element * self.plan.element_bytes

    # -- update phase -----------------------------------------------------------

    def update_phase(
        self, core_id: int, updates: Sequence[Tuple[int, object, int]]
    ) -> Trace:
        """Trace of one core's updates applied to its replica."""
        replica = self.replica_of_core(core_id)
        trace: Trace = []
        if not updates:
            # Keep region allocation lazy: a core with no updates must not
            # allocate its replica region (address layout is order-sensitive).
            return trace
        append = trace.append
        private_replica = self.plan.level is PrivatizationLevel.CORE
        base = self._replica_base(replica)
        element_bytes = self.plan.element_bytes
        op = self.plan.op
        for element, value, think in updates:
            address = base + element * element_bytes
            if private_replica:
                # Thread-private replica: read-modify-write with plain accesses.
                append(MemoryAccess(AccessType.LOAD, address, think_instructions=think))
                append(MemoryAccess(AccessType.STORE, address, think_instructions=1))
            else:
                # Socket-shared replica: atomics are still required.
                append(
                    MemoryAccess(
                        AccessType.ATOMIC_RMW,
                        address,
                        op=op,
                        value=value,
                        think_instructions=think,
                        size_bytes=op.word_bytes,
                    )
                )
        return trace

    # -- reduction phase ---------------------------------------------------------

    def reduction_phase(self, core_id: int, n_cores: int) -> Trace:
        """Trace of one core's share of the final reduction.

        Elements are block-partitioned among cores; for its elements the core
        loads every replica's value and stores the combined result into the
        shared array.  This is the phase whose cost grows with the number of
        elements and replicas, and which COUP eliminates.
        """
        trace: Trace = []
        append = trace.append
        n_elements = self.plan.n_elements
        bounds = [
            (n_elements * i) // n_cores for i in range(n_cores + 1)
        ]
        if bounds[core_id] == bounds[core_id + 1]:
            # No elements for this core: allocate nothing (see update_phase).
            return trace
        element_bytes = self.plan.element_bytes
        replica_bases = [
            self._replica_base(replica) for replica in range(self.plan.n_replicas)
        ]
        if self._shared_base is None:
            self._shared_base = self.addresses.region(f"{self.array_name}_shared")
        shared_base = self._shared_base
        load_t = AccessType.LOAD
        store_t = AccessType.STORE
        # This loop emits n_replicas * n_elements records — the largest trace
        # in the repository — so records are filled in via __new__ plus slot
        # stores, skipping constructor-call overhead (the addresses are
        # derived from validated bases, so the __init__ checks cannot fire).
        new = MemoryAccess.__new__
        for element in range(bounds[core_id], bounds[core_id + 1]):
            offset = element * element_bytes
            for base in replica_bases:
                record = new(MemoryAccess)
                record.access_type = load_t
                record.address = base + offset
                record.op = None
                record.value = None
                record.think_instructions = 1
                record.size_bytes = 8
                append(record)
            record = new(MemoryAccess)
            record.access_type = store_t
            record.address = shared_base + offset
            record.op = None
            record.value = None
            record.think_instructions = 1
            record.size_bytes = 8
            append(record)
        return trace


def socket_of_core(cores_per_socket: int) -> Callable[[int], int]:
    """Replica-assignment function for socket-level privatization."""

    def _socket(core_id: int) -> int:
        return core_id // cores_per_socket

    return _socket
