"""Software privatization: the software counterpart of COUP (Sec. 2.2, 4.1).

Privatization keeps one replica of the reduction variable per thread (or per
socket); threads update their replica with plain stores (or with atomics, for
socket-level sharing) and a separate *reduction phase* folds all replicas into
the shared result.  The technique removes coherence traffic from the update
phase, at the cost of

* a reduction phase whose work grows with ``n_replicas * n_elements``, and
* an ``n_replicas``-fold increase in memory footprint, which pressures the
  shared caches when the reduction variable is large (Sec. 5.3).

This module provides trace builders that turn a logical stream of updates per
core into the privatized update phase plus reduction phase, so any workload
with reduction-variable structure (histogram is the paper's example) can be
expressed in privatized form.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.core.commutative import CommutativeOp
from repro.sim.access import MemoryAccess, Trace
from repro.workloads.base import AddressMap


class PrivatizationLevel(enum.Enum):
    """Granularity at which replicas are created."""

    #: One replica per core ("thread-local" privatization).
    CORE = "core"
    #: One replica per socket, updated with atomics by the socket's cores.
    SOCKET = "socket"


@dataclass
class PrivatizedReductionPlan:
    """Layout of a privatized reduction variable.

    Attributes
    ----------
    n_elements:
        Number of elements in the logical reduction variable.
    element_bytes:
        Size of each element.
    op:
        Commutative operation used to combine per-replica values.
    level:
        Replication granularity.
    n_replicas:
        Number of replicas (cores or sockets).
    """

    n_elements: int
    element_bytes: int
    op: CommutativeOp
    level: PrivatizationLevel
    n_replicas: int

    @property
    def footprint_bytes(self) -> int:
        """Total memory footprint of all replicas (the privatization cost)."""
        return self.n_elements * self.element_bytes * self.n_replicas


class PrivatizedReductionBuilder:
    """Builds per-core traces for a privatized reduction variable.

    The caller supplies, per core, the logical update stream as
    ``(element_index, value, think_instructions)`` tuples.  The builder
    produces:

    * an **update phase**, where each core updates its replica —
      with plain load/store pairs for core-level privatization (the replica
      is thread-private) or atomic adds for socket-level privatization
      (the replica is shared by the socket's cores), and
    * a **reduction phase**, where the elements are partitioned among cores
      and each core folds every replica's value for its elements into the
      shared result array.
    """

    def __init__(
        self,
        plan: PrivatizedReductionPlan,
        addresses: AddressMap,
        *,
        array_name: str = "reduction",
        replica_of_core: Callable[[int], int] = None,
    ) -> None:
        self.plan = plan
        self.addresses = addresses
        self.array_name = array_name
        self.replica_of_core = replica_of_core or (lambda core: core)

    def _replica_address(self, replica: int, element: int) -> int:
        name = f"{self.array_name}_replica_{replica}"
        return self.addresses.element(name, element, self.plan.element_bytes)

    def _shared_address(self, element: int) -> int:
        return self.addresses.element(
            f"{self.array_name}_shared", element, self.plan.element_bytes
        )

    # -- update phase -----------------------------------------------------------

    def update_phase(
        self, core_id: int, updates: Sequence[Tuple[int, object, int]]
    ) -> Trace:
        """Trace of one core's updates applied to its replica."""
        replica = self.replica_of_core(core_id)
        trace: Trace = []
        private_replica = self.plan.level is PrivatizationLevel.CORE
        for element, value, think in updates:
            address = self._replica_address(replica, element)
            if private_replica:
                # Thread-private replica: read-modify-write with plain accesses.
                trace.append(MemoryAccess.load(address, think=think))
                trace.append(MemoryAccess.store(address, None, think=1))
            else:
                # Socket-shared replica: atomics are still required.
                trace.append(MemoryAccess.atomic(address, self.plan.op, value, think=think))
        return trace

    # -- reduction phase ---------------------------------------------------------

    def reduction_phase(self, core_id: int, n_cores: int) -> Trace:
        """Trace of one core's share of the final reduction.

        Elements are block-partitioned among cores; for its elements the core
        loads every replica's value and stores the combined result into the
        shared array.  This is the phase whose cost grows with the number of
        elements and replicas, and which COUP eliminates.
        """
        trace: Trace = []
        n_elements = self.plan.n_elements
        bounds = [
            (n_elements * i) // n_cores for i in range(n_cores + 1)
        ]
        for element in range(bounds[core_id], bounds[core_id + 1]):
            for replica in range(self.plan.n_replicas):
                trace.append(
                    MemoryAccess.load(self._replica_address(replica, element), think=1)
                )
            trace.append(
                MemoryAccess.store(self._shared_address(element), None, think=1)
            )
        return trace


def socket_of_core(cores_per_socket: int) -> Callable[[int], int]:
    """Replica-assignment function for socket-level privatization."""

    def _socket(core_id: int) -> int:
        return core_id // cores_per_socket

    return _socket
