"""Interconnect model: on-chip network plus a pluggable off-chip topology.

The simulated machine (Fig. 9) connects up to eight processor chips to the
same number of L4/global-directory chips.  The network model provides:

* **latency helpers and tables** — how many cycles a request/response pair
  spends on the on-chip network and on the off-chip topology.  The off-chip
  topology is pluggable (:mod:`repro.interconnect.topology`): the default
  dancehall reproduces the original fixed per-hop constants bit-for-bit,
  while crossbar/mesh/torus charge per-(src, dst) hop-path latencies;
* **traffic accounting** — bytes moved on- and off-chip, broken down by
  message type, which reproduces the Sec. 5.2 traffic-reduction results; and
* **contention** — an optional epoch-based queueing model
  (:mod:`repro.interconnect.contention`) charging per-link and
  per-directory-bank waiting-time surcharges and tracking per-link
  utilization.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.interconnect.contention import ContentionModel
from repro.interconnect.messages import LinkScope, MessageEvent, MessageType
from repro.interconnect.topology import (
    Topology,
    build_topology,
    directory_node,
    processor_node,
)
from repro.sim.config import NetworkConfig, SystemConfig
from repro.sim.stats import LinkStats


def _counter() -> Dict[str, int]:
    """Fresh per-instance counter dict (defaultdict keeps ``+=`` branch-free)."""
    return defaultdict(int)


@dataclass
class TrafficCounters:
    """Accumulated traffic statistics for one simulation run."""

    on_chip_bytes: int = 0
    off_chip_bytes: int = 0
    messages_by_type: Dict[str, int] = field(default_factory=_counter)
    bytes_by_type: Dict[str, int] = field(default_factory=_counter)

    @property
    def total_bytes(self) -> int:
        return self.on_chip_bytes + self.off_chip_bytes

    def merge(self, other: "TrafficCounters") -> None:
        self.on_chip_bytes += other.on_chip_bytes
        self.off_chip_bytes += other.off_chip_bytes
        # repro-lint: disable=D102(additive counter merge; per-key sums are order-insensitive)
        for key, value in other.messages_by_type.items():
            self.messages_by_type[key] += value
        # repro-lint: disable=D102(additive counter merge; per-key sums are order-insensitive)
        for key, value in other.bytes_by_type.items():
            self.bytes_by_type[key] += value

    def as_dict(self) -> dict:
        return {
            "on_chip_bytes": self.on_chip_bytes,
            "off_chip_bytes": self.off_chip_bytes,
            "total_bytes": self.total_bytes,
        }


class InterconnectModel:
    """Latency and traffic model for the Table 1 machine's interconnect."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.network: NetworkConfig = config.network
        self.traffic = TrafficCounters()
        #: Message size by type label, precomputed once (hot-path table).
        #: Keyed by the label string rather than the enum member because
        #: string hashes are cached while enum hashing re-hashes the name.
        self._size_of = {
            msg_type.label: msg_type.size_bytes(config.network)
            for msg_type in MessageType
        }
        #: Off-chip topology instance (dancehall by default).
        self.topology: Topology = build_topology(
            config.network.topology,
            n_chips=config.n_chips,
            n_l4_chips=config.n_l4_chips,
            link_latency=config.network.offchip_link_latency,
        )
        #: Per-(chip, L4 chip) round-trip latency: request out, response back.
        #: Every entry is ``2 * offchip_link_latency`` under the dancehall,
        #: reproducing the original fixed :meth:`offchip_round_trip` constant.
        self.l4_round_trip_table: List[List[int]] = [
            [
                2 * self.topology.one_way_latency(processor_node(chip), directory_node(l4))
                for l4 in range(config.n_l4_chips)
            ]
            for chip in range(config.n_chips)
        ]
        #: Per-(chip, chip) one-way transfer latency.  Under the dancehall a
        #: chip-to-chip path crosses an L4 chip (two links), matching the
        #: original :meth:`cross_socket_latency` constant.
        self.chip_transfer_table: List[List[int]] = [
            [
                self.topology.one_way_latency(processor_node(src), processor_node(dst))
                for dst in range(config.n_chips)
            ]
            for src in range(config.n_chips)
        ]
        #: Epoch queueing model, or None when contention is disabled (the
        #: default): the disabled path charges pure table lookups.
        self.contention: Optional[ContentionModel] = (
            ContentionModel(
                self.topology,
                config.network,
                l4_banks=config.l4.banks,
                l4_round_trip_table=self.l4_round_trip_table,
                chip_transfer_table=self.chip_transfer_table,
            )
            if config.network.topology.contention
            else None
        )

    # -- latency helpers ------------------------------------------------------

    def onchip_hop_latency(self) -> int:
        """One traversal of the on-chip network between L2s and L3 banks."""
        return self.network.onchip_latency

    def offchip_round_trip(self) -> int:
        """Request/response pair over a processor-chip <-> L4-chip link."""
        return 2 * self.network.offchip_link_latency

    def offchip_one_way(self) -> int:
        return self.network.offchip_link_latency

    def cross_socket_latency(self) -> int:
        """Processor chip -> L4 chip -> other processor chip (one way).

        In the dancehall topology every chip-to-chip path crosses an L4 chip,
        so cross-socket coherence actions pay two link traversals each way.
        """
        return 2 * self.network.offchip_link_latency

    # -- traffic accounting ---------------------------------------------------

    def record(self, events: Iterable[MessageEvent]) -> int:
        """Account a batch of messages; returns total bytes recorded."""
        total = 0
        for event in events:
            size = event.bytes(self.network)
            total += size
            if event.scope is LinkScope.OFF_CHIP:
                self.traffic.off_chip_bytes += size
            else:
                self.traffic.on_chip_bytes += size
            self.traffic.messages_by_type[event.msg_type.label] += event.count
            self.traffic.bytes_by_type[event.msg_type.label] += size
        return total

    def record_one(
        self, msg_type: MessageType, scope: LinkScope, count: int = 1
    ) -> int:
        """Account ``count`` messages of one type over one scope.

        Equivalent to ``record([MessageEvent(msg_type, scope, count)])`` but
        without allocating an event; protocol engines call this per coherence
        action, so it is on the hot path.
        """
        label = msg_type.label
        size = self._size_of[label] * count
        traffic = self.traffic
        if scope is LinkScope.OFF_CHIP:
            traffic.off_chip_bytes += size
        else:
            traffic.on_chip_bytes += size
        traffic.messages_by_type[label] += count
        traffic.bytes_by_type[label] += size
        return size

    def reset(self) -> None:
        self.traffic = TrafficCounters()
        if self.contention is not None:
            self.contention.reset()

    def link_report(self, run_cycles: float) -> Optional[LinkStats]:
        """Per-link utilization summary, or None when contention is disabled."""
        if self.contention is None:
            return None
        return self.contention.link_report(run_cycles)

    # -- topology helpers -----------------------------------------------------

    def is_offchip(self, chip_a: int, chip_b: int) -> bool:
        """Whether communication between two processor chips leaves the chip.

        Any communication with the L4/global directory is off-chip; two cores
        on the same processor chip communicate through the on-chip L3.
        """
        return chip_a != chip_b

    def sharer_chips(self, sharers: Iterable[int]) -> List[int]:
        """Distinct processor chips hosting the given cores."""
        return sorted({self.config.chip_of_core(core) for core in sharers})
