"""Pluggable off-chip topologies for the interconnect subsystem.

The simulated machine connects ``n_chips`` processor chips to ``n_l4_chips``
L4/global-directory chips.  A :class:`Topology` maps a (source node,
destination node) pair to the sequence of directed links a message traverses,
which gives the contention model per-link occupancy and gives the latency
model per-pair hop counts.  Four topologies are implemented:

* :class:`Dancehall` — the paper's Fig. 9 machine (the default): every
  processor chip has a dedicated point-to-point link to every L4 chip, so a
  chip-to-L4 transfer is one hop and a chip-to-chip transfer crosses an L4
  chip (two hops).  This reduces exactly to the original fixed-latency
  constants (``offchip_link_latency`` one way, twice that for a round trip).
* :class:`Crossbar` — a single central switch; every transfer traverses two
  port links (ingress + egress) but pays a single link latency, modelling a
  switch that arbitrates within one link-latency budget.
* :class:`Mesh2D` — processor and L4 chips interleaved on a near-square 2D
  grid with dimension-ordered (XY) routing; hop count equals the Manhattan
  distance between grid coordinates.
* :class:`Torus2D` — the same grid with wrap-around links; hop count equals
  the wrapped (toroidal) Manhattan distance.

Nodes are labelled ``p<i>`` (processor chips), ``d<j>`` (L4/directory
chips), ``x`` (the crossbar switch), and ``r<k>`` (grid routers with no
attached chip).  Links are directed ``(src_label, dst_label)`` pairs; a
route's length is its hop count.
"""

from __future__ import annotations

import abc
import math
from typing import Dict, List, Tuple

from repro.sim.config import TOPOLOGY_NAMES, TopologyConfig

#: One directed link, as a (source node label, destination node label) pair.
Link = Tuple[str, str]


def processor_node(chip: int) -> str:
    """Label of a processor chip's network node."""
    return f"p{chip}"


def directory_node(l4_chip: int) -> str:
    """Label of an L4/global-directory chip's network node."""
    return f"d{l4_chip}"


def link_label(link: Link) -> str:
    """Human- and JSON-friendly label of one directed link."""
    return f"{link[0]}->{link[1]}"


class Topology(abc.ABC):
    """Maps (src node, dst node) pairs to hop paths over directed links."""

    name: str = "abstract"

    def __init__(self, n_chips: int, n_l4_chips: int, link_latency: int) -> None:
        if n_chips <= 0 or n_l4_chips <= 0:
            raise ValueError("topologies need at least one chip of each kind")
        self.n_chips = n_chips
        self.n_l4_chips = n_l4_chips
        self.link_latency = link_latency

    # -- routing --------------------------------------------------------------

    @abc.abstractmethod
    def route(self, src: str, dst: str) -> Tuple[Link, ...]:
        """Directed links a message traverses from ``src`` to ``dst``."""

    def chip_to_l4(self, chip: int, l4_chip: int) -> Tuple[Link, ...]:
        """Path from a processor chip to an L4 chip."""
        return self.route(processor_node(chip), directory_node(l4_chip))

    def l4_to_chip(self, l4_chip: int, chip: int) -> Tuple[Link, ...]:
        """Path from an L4 chip back to a processor chip."""
        return self.route(directory_node(l4_chip), processor_node(chip))

    def chip_to_chip(self, src_chip: int, dst_chip: int) -> Tuple[Link, ...]:
        """Path between two processor chips."""
        return self.route(processor_node(src_chip), processor_node(dst_chip))

    # -- latency --------------------------------------------------------------

    def hops(self, src: str, dst: str) -> int:
        """Number of links a ``src`` -> ``dst`` message traverses."""
        return len(self.route(src, dst))

    def latency_hops(self, src: str, dst: str) -> int:
        """Hops *charged as latency* for a ``src`` -> ``dst`` traversal.

        Equal to :meth:`hops` for every topology except the crossbar, whose
        two port links are crossed within a single link-latency budget.
        """
        return self.hops(src, dst)

    def one_way_latency(self, src: str, dst: str) -> int:
        """Cycles for one traversal from ``src`` to ``dst``."""
        return self.link_latency * self.latency_hops(src, dst)


class Dancehall(Topology):
    """Fig. 9: dedicated point-to-point links between every chip pair.

    ``p<i> -> d<j>`` is always a single dedicated link, so the one-way
    latency is exactly ``offchip_link_latency`` — the original fixed-latency
    interconnect.  Chip-to-chip transfers cross the destination's paired L4
    chip (every chip-to-chip path crosses an L4 chip in a dancehall), so they
    cost two hops, matching the original ``cross_socket_latency``.
    """

    name = "dancehall"

    def route(self, src: str, dst: str) -> Tuple[Link, ...]:
        if src == dst:
            return ()
        if src[0] != dst[0]:
            # processor <-> directory: the dedicated point-to-point link.
            return ((src, dst),)
        # Same-kind pair: relay through the destination's paired chip of the
        # other kind (any relay gives the same hop count; pairing is a
        # deterministic choice so contention accounting is reproducible).
        if src[0] == "p":
            relay = directory_node(int(dst[1:]) % self.n_l4_chips)
        else:
            relay = processor_node(int(dst[1:]) % self.n_chips)
        return ((src, relay), (relay, dst))


class Crossbar(Topology):
    """A single central switch: every node connects to one crossbar node.

    A transfer enters the switch on the source's port link and leaves on the
    destination's: two links carry the bytes (both are contended), but the
    switch arbitrates within one link-latency budget, so
    :meth:`latency_hops` is 1 for any distinct pair.
    """

    name = "crossbar"

    SWITCH = "x"

    def route(self, src: str, dst: str) -> Tuple[Link, ...]:
        if src == dst:
            return ()
        return ((src, self.SWITCH), (self.SWITCH, dst))

    def latency_hops(self, src: str, dst: str) -> int:
        return 0 if src == dst else 1


class Mesh2D(Topology):
    """Near-square 2D mesh with dimension-ordered (XY) routing.

    Processor and L4 chips are interleaved along the grid (``p0, d0, p1,
    d1, ...``) so each processor chip sits next to its paired L4 chip; grid
    slots beyond the chip count host plain routers (``r<k>``).  A message
    first travels along X to the destination column, then along Y — the
    standard deadlock-free dimension order.  Hop count equals the Manhattan
    distance between the two grid coordinates.
    """

    name = "mesh"

    def __init__(self, n_chips: int, n_l4_chips: int, link_latency: int) -> None:
        super().__init__(n_chips, n_l4_chips, link_latency)
        n_nodes = n_chips + n_l4_chips
        self.cols = max(1, math.ceil(math.sqrt(n_nodes)))
        self.rows = max(1, math.ceil(n_nodes / self.cols))
        #: node label -> (x, y) grid coordinate, chips interleaved.
        self._coord: Dict[str, Tuple[int, int]] = {}
        #: (x, y) -> node label (routers fill the slots beyond the chips).
        self._label: Dict[Tuple[int, int], str] = {}
        labels: List[str] = []
        for index in range(max(n_chips, n_l4_chips)):
            if index < n_chips:
                labels.append(processor_node(index))
            if index < n_l4_chips:
                labels.append(directory_node(index))
        for index in range(self.rows * self.cols):
            label = labels[index] if index < len(labels) else f"r{index}"
            coord = (index % self.cols, index // self.cols)
            self._label[coord] = label
            if index < len(labels):
                self._coord[label] = coord

    def coordinate(self, node: str) -> Tuple[int, int]:
        """Grid coordinate of a chip's node label."""
        return self._coord[node]

    def _steps(self, origin: int, target: int, size: int) -> List[int]:
        """Per-dimension coordinates visited from ``origin`` to ``target``."""
        step = 1 if target > origin else -1
        return list(range(origin + step, target + step, step))

    def route(self, src: str, dst: str) -> Tuple[Link, ...]:
        if src == dst:
            return ()
        (x, y), (x2, y2) = self._coord[src], self._coord[dst]
        path: List[Link] = []
        here = src
        for nx in self._steps(x, x2, self.cols):
            nxt = self._label[(nx, y)]
            path.append((here, nxt))
            here = nxt
        for ny in self._steps(y, y2, self.rows):
            nxt = self._label[(x2, ny)]
            path.append((here, nxt))
            here = nxt
        return tuple(path)


class Torus2D(Mesh2D):
    """The 2D mesh grid with wrap-around links in both dimensions.

    Routing still goes X then Y, but each dimension independently picks the
    shorter way around the ring (ties go forward), so hop count equals the
    wrapped Manhattan distance.
    """

    name = "torus"

    def _steps(self, origin: int, target: int, size: int) -> List[int]:
        if origin == target:
            return []
        forward = (target - origin) % size
        backward = (origin - target) % size
        step = 1 if forward <= backward else -1
        distance = forward if forward <= backward else backward
        return [(origin + step * offset) % size for offset in range(1, distance + 1)]


#: Topology name -> implementation class.
TOPOLOGIES = {
    Dancehall.name: Dancehall,
    Crossbar.name: Crossbar,
    Mesh2D.name: Mesh2D,
    Torus2D.name: Torus2D,
}

assert set(TOPOLOGIES) == set(TOPOLOGY_NAMES), "registry out of sync with config"


def build_topology(
    config: TopologyConfig, n_chips: int, n_l4_chips: int, link_latency: int
) -> Topology:
    """Instantiate the topology a :class:`TopologyConfig` names."""
    return TOPOLOGIES[config.name](n_chips, n_l4_chips, link_latency)
