"""Epoch-based link and directory-bank contention model.

The timing simulator resolves accesses atomically, so contention cannot be
modelled by transporting individual flits.  Instead this module accumulates
*occupancy* per epoch — bytes on every directed link a transfer's route
crosses, and requests at every L4 directory bank — and charges each off-chip
transfer an M/D/1-style waiting-time surcharge derived from the **previous**
epoch's utilization:

    wait(rho) = service_time * rho / (2 * (1 - rho))

with ``rho`` clamped below 1 (``TopologyConfig.max_utilization``).  Using the
previous epoch's utilization keeps the model causal and deterministic: the
surcharge a transfer pays never depends on transfers that have not been
resolved yet, so results are independent of scheduling (``runner --jobs N``
replays identically).

Two limits anchor the model (pinned by ``tests/interconnect``):

* zero load => zero surcharge — an idle network charges exactly the base
  topology latency, and
* utilization -> 1 => monotonically increasing surcharge — the M/D/1 waiting
  time is strictly increasing in ``rho``.

Per-link byte totals and end-of-run utilizations are kept for the whole run
and surfaced through ``SimulationResult.link_stats``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence, Tuple

from repro.interconnect.topology import Link, Topology, directory_node, link_label
from repro.sim.config import NetworkConfig, TopologyConfig
from repro.sim.stats import LinkStats


class ContentionModel:
    """Per-link and per-directory-bank epoch queueing for one simulation run."""

    def __init__(
        self,
        topology: Topology,
        network: NetworkConfig,
        l4_banks: int,
        l4_round_trip_table: Sequence[Sequence[int]],
        chip_transfer_table: Sequence[Sequence[int]],
    ) -> None:
        self.topology = topology
        config: TopologyConfig = network.topology
        self.epoch_cycles = float(config.epoch_cycles)
        self.bandwidth = config.link_bandwidth_bytes_per_cycle
        self.max_utilization = config.max_utilization
        #: Cycles to push one data message through a link at full bandwidth;
        #: the M/D/1 service time for link queueing.
        self.link_service = network.data_bytes / self.bandwidth
        self.bank_service = config.bank_service_cycles
        self._control_bytes = network.control_bytes
        self._data_bytes = network.data_bytes
        self._l4_banks = max(1, l4_banks)
        self._base_l4_rt = l4_round_trip_table
        self._base_chip = chip_transfer_table

        #: Request/response route per (chip, l4) and (chip, chip) pair,
        #: precomputed once (routes are hot relative to their count).
        n_chips = topology.n_chips
        n_l4 = topology.n_l4_chips
        self._l4_paths: List[List[Tuple[Tuple[Link, ...], Tuple[Link, ...]]]] = [
            [
                (topology.chip_to_l4(chip, l4), topology.l4_to_chip(l4, chip))
                for l4 in range(n_l4)
            ]
            for chip in range(n_chips)
        ]
        self._chip_paths: List[List[Tuple[Tuple[Link, ...], Tuple[Link, ...]]]] = [
            [
                (topology.chip_to_chip(src, dst), topology.chip_to_chip(dst, src))
                for dst in range(n_chips)
            ]
            for src in range(n_chips)
        ]

        # -- epoch state ------------------------------------------------------
        self._epoch = 0
        self._link_bytes_epoch: Dict[Link, float] = defaultdict(float)
        self._link_bytes_prev: Dict[Link, float] = {}
        self._bank_requests_epoch: Dict[Tuple[int, int], int] = defaultdict(int)
        self._bank_requests_prev: Dict[Tuple[int, int], int] = {}

        # -- whole-run counters ----------------------------------------------
        self.link_bytes_total: Dict[Link, int] = defaultdict(int)
        self.bank_requests_total: Dict[Tuple[int, int], int] = defaultdict(int)
        self.surcharge_cycles = 0.0
        self.transfers = 0

    # -- epoch bookkeeping ----------------------------------------------------

    def _advance_epoch(self, now: float) -> None:
        """Roll the epoch windows forward to the epoch containing ``now``."""
        epoch = int(now // self.epoch_cycles)
        if epoch == self._epoch:
            return
        if epoch == self._epoch + 1:
            # Adjacent epoch: the finished window becomes the basis for
            # surcharges in the new one.
            self._link_bytes_prev = dict(self._link_bytes_epoch)
            self._bank_requests_prev = dict(self._bank_requests_epoch)
        else:
            # The simulation jumped several epochs (a long compute phase):
            # the most recent complete epoch carried no traffic.
            self._link_bytes_prev = {}
            self._bank_requests_prev = {}
        self._link_bytes_epoch.clear()
        self._bank_requests_epoch.clear()
        self._epoch = epoch

    def _link_wait(self, link: Link) -> float:
        """M/D/1 waiting time on one link from the previous epoch's load."""
        load = self._link_bytes_prev.get(link)
        if not load:
            return 0.0
        rho = load / (self.bandwidth * self.epoch_cycles)
        if rho > self.max_utilization:
            rho = self.max_utilization
        return self.link_service * rho / (2.0 * (1.0 - rho))

    def _bank_wait(self, bank: Tuple[int, int]) -> float:
        """M/D/1 waiting time at one directory bank."""
        requests = self._bank_requests_prev.get(bank)
        if not requests:
            return 0.0
        rho = requests * self.bank_service / self.epoch_cycles
        if rho > self.max_utilization:
            rho = self.max_utilization
        return self.bank_service * rho / (2.0 * (1.0 - rho))

    def _charge_path(
        self,
        forward: Tuple[Link, ...],
        reverse: Tuple[Link, ...],
        forward_bytes: int,
        reverse_bytes: int,
    ) -> float:
        """Record one exchange's bytes per direction; return the link surcharge."""
        wait = 0.0
        epoch_bytes = self._link_bytes_epoch
        totals = self.link_bytes_total
        for link in forward:
            wait += self._link_wait(link)
            epoch_bytes[link] += forward_bytes
            totals[link] += forward_bytes
        for link in reverse:
            wait += self._link_wait(link)
            epoch_bytes[link] += reverse_bytes
            totals[link] += reverse_bytes
        return wait

    def _l4_exchange(
        self,
        chip: int,
        l4_chip: int,
        line_addr: int,
        now: float,
        forward_bytes: int,
        reverse_bytes: int,
    ) -> float:
        """Common body of the three chip <-> home-L4 exchange kinds."""
        self._advance_epoch(now)
        forward, reverse = self._l4_paths[chip][l4_chip]
        wait = self._charge_path(forward, reverse, forward_bytes, reverse_bytes)
        bank = (l4_chip, line_addr % self._l4_banks)
        wait += self._bank_wait(bank)
        self._bank_requests_epoch[bank] += 1
        self.bank_requests_total[bank] += 1
        self.surcharge_cycles += wait
        self.transfers += 1
        return self._base_l4_rt[chip][l4_chip] + wait

    # -- protocol-facing charging API -----------------------------------------
    #
    # The three L4 exchange kinds share one base latency (the topology's
    # round-trip table) but differ in the bytes they occupy links with,
    # mirroring what the traffic accounting records for the same actions.

    def l4_round_trip(self, chip: int, l4_chip: int, line_addr: int, now: float) -> float:
        """Demand fetch: control-sized request out, data-sized response back.

        Queues at the home directory bank and returns the base topology
        latency plus the M/D/1 surcharge accumulated from the previous
        epoch's occupancy.
        """
        return self._l4_exchange(
            chip, l4_chip, line_addr, now, self._control_bytes, self._data_bytes
        )

    def l4_control_round_trip(
        self, chip: int, l4_chip: int, line_addr: int, now: float
    ) -> float:
        """Control exchange (invalidate/ack, remote op/ack): no data leg."""
        return self._l4_exchange(
            chip, l4_chip, line_addr, now, self._control_bytes, self._control_bytes
        )

    def l4_partial_update(
        self, chip: int, l4_chip: int, line_addr: int, now: float
    ) -> float:
        """Reduction gather: control request out to the chip, data back to L4.

        The directory's reduce request travels L4 -> chip (the *reverse*
        path of the chip-oriented route pair) and the aggregated partial
        update carries a data message chip -> L4 (the forward path), so the
        byte roles are swapped relative to a demand fetch.
        """
        return self._l4_exchange(
            chip, l4_chip, line_addr, now, self._data_bytes, self._control_bytes
        )

    def chip_transfer(self, src_chip: int, dst_chip: int, now: float) -> float:
        """Latency of a chip <-> chip exchange (downgrade out, writeback back).

        The base latency is the topology's *one-way* chip-to-chip latency:
        the legacy model charged its single off-chip round-trip constant for
        a cross-chip downgrade, which under the dancehall exactly equals the
        one-way two-link chip-to-chip path — that equivalence is what keeps
        the default bit-identical, so the one-way convention is kept for
        every topology.  Occupancy is still charged on both directions
        (control out, data back), since both messages really traverse.
        """
        self._advance_epoch(now)
        forward, reverse = self._chip_paths[src_chip][dst_chip]
        wait = self._charge_path(
            forward, reverse, self._control_bytes, self._data_bytes
        )
        self.surcharge_cycles += wait
        self.transfers += 1
        return self._base_chip[src_chip][dst_chip] + wait

    # -- reporting -------------------------------------------------------------

    def link_report(self, run_cycles: float) -> LinkStats:
        """Whole-run per-link utilization and surcharge summary."""
        capacity = self.bandwidth * run_cycles if run_cycles > 0 else 0.0
        links = {
            link_label(link): {
                "bytes": total,
                "utilization": (total / capacity) if capacity else 0.0,
            }
            for link, total in sorted(self.link_bytes_total.items())
        }
        banks = {
            f"{directory_node(l4)}.b{bank}": requests
            for (l4, bank), requests in sorted(self.bank_requests_total.items())
        }
        # repro-lint: disable=D102(links is built from sorted items above, so its view order is canonical)
        utilizations = [entry["utilization"] for entry in links.values()]
        return LinkStats(
            topology=self.topology.name,
            epoch_cycles=self.epoch_cycles,
            link_bandwidth_bytes_per_cycle=self.bandwidth,
            links=links,
            bank_requests=banks,
            max_link_utilization=max(utilizations, default=0.0),
            mean_link_utilization=(
                sum(utilizations) / len(utilizations) if utilizations else 0.0
            ),
            surcharge_cycles=self.surcharge_cycles,
            offchip_transfers=self.transfers,
        )

    def reset(self) -> None:
        """Forget all epoch state and whole-run counters."""
        self._epoch = 0
        self._link_bytes_epoch.clear()
        self._link_bytes_prev = {}
        self._bank_requests_epoch.clear()
        self._bank_requests_prev = {}
        self.link_bytes_total.clear()
        self.bank_requests_total.clear()
        self.surcharge_cycles = 0.0
        self.transfers = 0
