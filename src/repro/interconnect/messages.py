"""Coherence message catalogue used for traffic accounting.

The timing simulator does not transport individual messages; instead, each
protocol action records which messages it would have sent and over which
links, and the network model converts that into byte counts.  Sizes follow
the simulated machine's configuration: 8-byte control messages and 72-byte
data messages (64-byte line plus header) by default.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.sim.config import NetworkConfig


class MessageClass(enum.Enum):
    """Whether a message carries a full cache line or just address/control."""

    CONTROL = "control"
    DATA = "data"


class MessageType(enum.Enum):
    """Coherence message types exchanged in MESI / MEUSI / RMO protocols."""

    # Requests from private caches to the directory.
    GET_SHARED = ("GetS", MessageClass.CONTROL)
    GET_EXCLUSIVE = ("GetX", MessageClass.CONTROL)
    GET_UPDATE = ("GetU", MessageClass.CONTROL)
    UPGRADE = ("Upg", MessageClass.CONTROL)
    PUT_LINE = ("Put", MessageClass.DATA)
    PUT_PARTIAL = ("PutPartial", MessageClass.DATA)
    #: Remote memory operation request (carries address + operand, control-sized).
    REMOTE_OP = ("RemoteOp", MessageClass.CONTROL)

    # Directory to private caches.
    INVALIDATE = ("Inv", MessageClass.CONTROL)
    DOWNGRADE = ("Downgrade", MessageClass.CONTROL)
    REDUCE_REQUEST = ("ReduceReq", MessageClass.CONTROL)
    DATA_RESPONSE = ("Data", MessageClass.DATA)
    GRANT_NO_DATA = ("Grant", MessageClass.CONTROL)

    # Private caches back to the directory.
    ACK = ("Ack", MessageClass.CONTROL)
    DATA_WRITEBACK = ("WbData", MessageClass.DATA)
    PARTIAL_UPDATE = ("PartialUpdate", MessageClass.DATA)

    def __init__(self, label: str, msg_class: MessageClass) -> None:
        self.label = label
        self.msg_class = msg_class

    def size_bytes(self, network: NetworkConfig) -> int:
        """Size of this message under a given network configuration."""
        if self.msg_class is MessageClass.DATA:
            return network.data_bytes
        return network.control_bytes


class LinkScope(enum.Enum):
    """Which part of the interconnect a message traverses.

    Off-chip messages cross the processor-chip/L4-chip dancehall links; the
    paper's traffic numbers (Sec. 5.2) count off-chip traffic, so scopes let
    the network model separate the two.
    """

    ON_CHIP = "on_chip"
    OFF_CHIP = "off_chip"


@dataclass(frozen=True)
class MessageEvent:
    """One message sent during a protocol action."""

    msg_type: MessageType
    scope: LinkScope
    count: int = 1

    def bytes(self, network: NetworkConfig) -> int:
        return self.count * self.msg_type.size_bytes(network)


def total_bytes(events: List[MessageEvent], network: NetworkConfig) -> int:
    """Total bytes of a list of message events."""
    return sum(event.bytes(network) for event in events)
