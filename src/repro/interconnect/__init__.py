"""Interconnect substrate: message catalogue, topology, traffic accounting."""

from repro.interconnect.messages import LinkScope, MessageClass, MessageEvent, MessageType, total_bytes
from repro.interconnect.network import InterconnectModel, TrafficCounters

__all__ = [
    "InterconnectModel",
    "LinkScope",
    "MessageClass",
    "MessageEvent",
    "MessageType",
    "TrafficCounters",
    "total_bytes",
]
