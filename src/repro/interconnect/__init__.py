"""Interconnect subsystem: messages, pluggable topologies, contention, traffic.

* :mod:`repro.interconnect.messages` — the coherence message catalogue.
* :mod:`repro.interconnect.topology` — pluggable off-chip topologies
  (dancehall, crossbar, 2D mesh, 2D torus) mapping (src, dst) pairs to hop
  paths over directed links.
* :mod:`repro.interconnect.contention` — epoch-based link/directory-bank
  queueing charging M/D/1-style waiting-time surcharges.
* :mod:`repro.interconnect.network` — the :class:`InterconnectModel` facade
  the protocol engines use: latency tables, traffic accounting, and the
  optional contention model.
"""

from repro.interconnect.contention import ContentionModel
from repro.interconnect.messages import LinkScope, MessageClass, MessageEvent, MessageType, total_bytes
from repro.interconnect.network import InterconnectModel, TrafficCounters
from repro.interconnect.topology import (
    TOPOLOGIES,
    Crossbar,
    Dancehall,
    Mesh2D,
    Topology,
    Torus2D,
    build_topology,
)

__all__ = [
    "TOPOLOGIES",
    "ContentionModel",
    "Crossbar",
    "Dancehall",
    "InterconnectModel",
    "LinkScope",
    "Mesh2D",
    "MessageClass",
    "MessageEvent",
    "MessageType",
    "Topology",
    "Torus2D",
    "TrafficCounters",
    "build_topology",
    "total_bytes",
]
