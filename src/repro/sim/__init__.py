"""Trace-driven multicore timing simulation.

The simulator module is imported lazily (PEP 562) because protocol engines in
:mod:`repro.core` import :mod:`repro.sim.config`; importing the simulator
eagerly here would close an import cycle while those modules are still
initialising.
"""

from repro.sim.access import AccessType, MemoryAccess, Trace, WorkloadTrace
from repro.sim.config import (
    CacheConfig,
    CoreConfig,
    MemoryConfig,
    NetworkConfig,
    ReductionUnitConfig,
    SystemConfig,
    small_test_config,
    table1_config,
)
from repro.sim.core_model import CoreTimingModel
from repro.sim.stats import AMAT_COMPONENTS, CoreStats, LatencyBreakdown, SimulationResult

__all__ = [
    "ACCESS_DTYPE",
    "AMAT_COMPONENTS",
    "AccessType",
    "CacheConfig",
    "ColumnarTrace",
    "CoreConfig",
    "CoreStats",
    "CoreTimingModel",
    "LatencyBreakdown",
    "MemoryAccess",
    "MemoryConfig",
    "MulticoreSimulator",
    "NetworkConfig",
    "PROTOCOLS",
    "ReductionUnitConfig",
    "SimulationResult",
    "SystemConfig",
    "Trace",
    "WorkloadTrace",
    "compare_protocols",
    "make_protocol",
    "simulate",
    "small_test_config",
    "table1_config",
]

_LAZY_SIMULATOR_NAMES = {
    "MulticoreSimulator",
    "PROTOCOLS",
    "compare_protocols",
    "make_protocol",
    "simulate",
}

_LAZY_COLUMNAR_NAMES = {"ACCESS_DTYPE", "ColumnarTrace", "TraceCodecError"}


def __getattr__(name: str):
    if name in _LAZY_SIMULATOR_NAMES:
        from repro.sim import simulator

        return getattr(simulator, name)
    if name in _LAZY_COLUMNAR_NAMES:
        from repro.sim import columnar

        return getattr(columnar, name)
    raise AttributeError(f"module 'repro.sim' has no attribute {name!r}")
