"""Core timing model.

The paper simulates Nehalem-like out-of-order cores with zsim; this
reproduction uses a much simpler model: non-memory instructions retire at a
fixed CPI, atomic read-modify-write sequences pay a fixed µop overhead
(load-linked, execute, store-conditional, store-load fence), and
commutative-update instructions pay a smaller overhead (they produce no
register result but keep the implicit fence for TSO, Sec. 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.access import AccessType, MemoryAccess
from repro.sim.config import CoreConfig


@dataclass(slots=True)
class CoreTimingModel:
    """Charges compute cycles for the non-memory part of the instruction stream."""

    config: CoreConfig
    cycles_per_instruction: float = field(init=False)
    atomic_overhead: float = field(init=False)
    commutative_overhead: float = field(init=False)

    def __post_init__(self) -> None:
        # Hot-path constants: the simulator inlines the per-access timing
        # arithmetic, so the per-type overheads are exposed as plain floats.
        self.cycles_per_instruction = self.config.cycles_per_instruction
        self.atomic_overhead = float(self.config.atomic_uop_overhead)
        self.commutative_overhead = float(self.config.commutative_uop_overhead)

    def think_cycles(self, access: MemoryAccess) -> float:
        """Cycles spent on the instructions preceding this access."""
        return access.think_instructions * self.config.cycles_per_instruction

    def issue_overhead(self, access: MemoryAccess) -> float:
        """Core-side overhead of the access itself, beyond memory latency."""
        if access.access_type is AccessType.ATOMIC_RMW:
            return float(self.config.atomic_uop_overhead)
        if access.access_type in (AccessType.COMMUTATIVE_UPDATE, AccessType.REMOTE_UPDATE):
            return float(self.config.commutative_uop_overhead)
        return 0.0

    def cycles_for(self, access: MemoryAccess, memory_latency: float) -> float:
        """Total cycles this access occupies the core."""
        return self.think_cycles(access) + self.issue_overhead(access) + memory_latency
