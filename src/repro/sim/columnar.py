"""Packed columnar representation of memory-access traces.

A :class:`~repro.sim.access.WorkloadTrace` stores one Python object per
access — flexible, but ~100+ bytes per record, slow to generate in bulk, and
expensive to cache or ship between processes.  :class:`ColumnarTrace` packs
the same information into one NumPy structured array per core:

========== ===== =======================================================
field      dtype contents
========== ===== =======================================================
type_code  u1    access type + commutative op + width + value kind,
                 folded into one code (see the layout below)
address    u8    byte address
value_delta i8   operand value: the integer itself, the two's-complement
                 wrap of a uint64 operand, or the IEEE-754 bit pattern of
                 a float operand (which kind is recorded in ``type_code``)
compute_gap f8   think instructions since the previous access (an exact
                 small integer stored as a double, so the simulator can
                 multiply by CPI without an int->float conversion)
phase      u4    phase index of the access (derived from the trace's
                 phase boundaries; informational — the boundaries array
                 is authoritative and round-trips exactly)
========== ===== =======================================================

The converters are exact and order-preserving: ``pack -> unpack`` returns
accesses that compare equal (``MemoryAccess.__eq__``) in the original order,
and the golden-equivalence suite pins that simulating either form produces
bit-identical :class:`~repro.sim.stats.SimulationResult`s.

``type_code`` layout (104 codes):

* ``0..15``  — LOAD:  ``size_slot * 4 + value_kind``
* ``16..31`` — STORE: ``16 + size_slot * 4 + value_kind``
* ``32..55`` — ATOMIC_RMW:          ``32 + op_index * 3 + (value_kind - 1)``
* ``56..79`` — COMMUTATIVE_UPDATE:  ``56 + ...``
* ``80..103``— REMOTE_UPDATE:       ``80 + ...``

where ``size_slot`` indexes ``(1, 2, 4, 8)`` bytes, ``value_kind`` is
``0=None, 1=int64, 2=uint64, 3=float64``, and ``op_index`` indexes
:data:`repro.core.commutative.ALL_OPS` (update widths are implied by the
op).  The ranges are ordered so cheap integer comparisons classify a code:
``code >= 16`` is an update (store or RMW), ``code >= 32`` is an
atomic/commutative/remote update.
"""

from __future__ import annotations

import json
import os
import struct
import tempfile
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.commutative import ALL_OPS, CommutativeOp
from repro.sim.access import AccessType, MemoryAccess, Trace, WorkloadTrace

#: Packed per-access record: 29 bytes (unaligned) vs ~100+ for the object form.
ACCESS_DTYPE = np.dtype(
    [
        ("type_code", "u1"),
        ("address", "u8"),
        ("value_delta", "i8"),
        ("compute_gap", "f8"),
        ("phase", "u4"),
    ]
)

#: Value-kind slots recorded in ``type_code``.
VK_NONE, VK_INT, VK_UINT, VK_FLOAT = 0, 1, 2, 3

#: Access widths representable for loads and stores.
_LOAD_STORE_SIZES = (1, 2, 4, 8)

#: Range boundaries of the ``type_code`` layout, one per access-type block
#: (derived below and asserted against the generated table, so a change to
#: the table cannot silently desynchronize consumers like the simulator's
#: columnar dispatch).
#: Codes >= this are updates (stores, atomics, commutative, remote).
UPDATE_MIN_CODE = 16
#: Codes >= this are atomic/commutative/remote updates (Table 2 statistics).
COMM_MIN_CODE = 32
#: First commutative-update code (atomics occupy [COMM_MIN_CODE, this)).
COMMUTATIVE_MIN_CODE = 56
#: First remote-update code (commutative updates occupy up to here).
REMOTE_MIN_CODE = 80

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1
_UINT64_MAX = (1 << 64) - 1
_TWO64 = 1 << 64
#: Largest think count a float64 stores exactly.
_MAX_EXACT_GAP = 1 << 53

_PACK_F64 = struct.Struct("<d").pack
_UNPACK_F64 = struct.Struct("<d").unpack
_PACK_I64 = struct.Struct("<q").pack
_UNPACK_I64 = struct.Struct("<q").unpack


class TraceCodecError(ValueError):
    """An access cannot be represented in the packed columnar format."""


def _build_code_tables():
    """Static code tables: one u1 per (type, op, size, value-kind) combo."""
    code_type: List[AccessType] = []
    code_op: List[Optional[CommutativeOp]] = []
    code_size: List[int] = []
    code_vk: List[int] = []
    pack: Dict[Tuple[AccessType, Optional[CommutativeOp], int, int], int] = {}

    def emit(access_type, op, size, vk):
        code = len(code_type)
        code_type.append(access_type)
        code_op.append(op)
        code_size.append(size)
        code_vk.append(vk)
        pack[(access_type, op, size, vk)] = code

    for access_type in (AccessType.LOAD, AccessType.STORE):
        for size in _LOAD_STORE_SIZES:
            for vk in (VK_NONE, VK_INT, VK_UINT, VK_FLOAT):
                emit(access_type, None, size, vk)
    for access_type in (
        AccessType.ATOMIC_RMW,
        AccessType.COMMUTATIVE_UPDATE,
        AccessType.REMOTE_UPDATE,
    ):
        for op in ALL_OPS:
            for vk in (VK_INT, VK_UINT, VK_FLOAT):
                emit(access_type, op, op.word_bytes, vk)
    return tuple(code_type), tuple(code_op), tuple(code_size), tuple(code_vk), pack


CODE_ACCESS_TYPE, CODE_OP, CODE_SIZE, CODE_VALUE_KIND, _PACK_CODE = _build_code_tables()
N_CODES = len(CODE_ACCESS_TYPE)

#: The published range boundaries must match the generated table exactly.
assert CODE_ACCESS_TYPE[UPDATE_MIN_CODE - 1] is AccessType.LOAD
assert CODE_ACCESS_TYPE[UPDATE_MIN_CODE] is AccessType.STORE
assert CODE_ACCESS_TYPE[COMM_MIN_CODE - 1] is AccessType.STORE
assert CODE_ACCESS_TYPE[COMM_MIN_CODE] is AccessType.ATOMIC_RMW
assert CODE_ACCESS_TYPE[COMMUTATIVE_MIN_CODE - 1] is AccessType.ATOMIC_RMW
assert CODE_ACCESS_TYPE[COMMUTATIVE_MIN_CODE] is AccessType.COMMUTATIVE_UPDATE
assert CODE_ACCESS_TYPE[REMOTE_MIN_CODE - 1] is AccessType.COMMUTATIVE_UPDATE
assert CODE_ACCESS_TYPE[REMOTE_MIN_CODE] is AccessType.REMOTE_UPDATE
assert CODE_ACCESS_TYPE[N_CODES - 1] is AccessType.REMOTE_UPDATE

#: NumPy lookup table: code -> value kind, for vectorized value decoding.
_VK_LUT = np.array(CODE_VALUE_KIND, dtype=np.uint8)

#: Access-kind slots used by the batched simulation kernel's vectorized
#: dispatch: 0=LOAD, 1=STORE, 2=ATOMIC_RMW, 3=COMMUTATIVE, 4=REMOTE.
KIND_LOAD, KIND_STORE, KIND_ATOMIC, KIND_COMMUTATIVE, KIND_REMOTE = range(5)

_KIND_OF_TYPE = {
    AccessType.LOAD: KIND_LOAD,
    AccessType.STORE: KIND_STORE,
    AccessType.ATOMIC_RMW: KIND_ATOMIC,
    AccessType.COMMUTATIVE_UPDATE: KIND_COMMUTATIVE,
    AccessType.REMOTE_UPDATE: KIND_REMOTE,
}

#: NumPy lookup table: code -> access kind (``KIND_*``), for the batched
#: kernel's vectorized classification (`kinds = CODE_KIND[codes]`).
CODE_KIND = np.array(
    [_KIND_OF_TYPE[access_type] for access_type in CODE_ACCESS_TYPE], dtype=np.uint8
)

#: Sentinel for "no commutative op" in :data:`CODE_OP_INDEX`.
NO_OP_INDEX = 255

#: NumPy lookup table: code -> index into :data:`ALL_OPS` (or
#: :data:`NO_OP_INDEX` for loads/stores).  The batched kernel compares these
#: against the directory entry's op index to vectorize MEUSI's
#: same-update-type rule for U-state lines.
CODE_OP_INDEX = np.array(
    [ALL_OPS.index(op) if op is not None else NO_OP_INDEX for op in CODE_OP],
    dtype=np.uint8,
)


def encode_value(value) -> Tuple[int, int]:
    """``(value_kind, value_delta)`` for one operand value."""
    if value is None:
        return VK_NONE, 0
    if isinstance(value, float):
        return VK_FLOAT, _UNPACK_I64(_PACK_F64(value))[0]
    if isinstance(value, int):
        if value > _INT64_MAX:
            if value > _UINT64_MAX:
                raise TraceCodecError(f"integer operand out of uint64 range: {value}")
            return VK_UINT, value - _TWO64
        if value < _INT64_MIN:
            raise TraceCodecError(f"integer operand out of int64 range: {value}")
        return VK_INT, value
    raise TraceCodecError(f"unrepresentable operand value: {value!r}")


def decode_value(value_kind: int, delta: int):
    """Inverse of :func:`encode_value`."""
    if value_kind == VK_NONE:
        return None
    if value_kind == VK_INT:
        return delta
    if value_kind == VK_UINT:
        return delta % _TWO64
    return _UNPACK_F64(_PACK_I64(delta))[0]


def code_for(
    access_type: AccessType,
    op: Optional[CommutativeOp],
    size_bytes: int,
    value_kind: int,
) -> int:
    """The ``type_code`` for a (type, op, width, value-kind) combination."""
    try:
        return _PACK_CODE[(access_type, op, size_bytes, value_kind)]
    except KeyError:
        raise TraceCodecError(
            f"unrepresentable access shape: type={access_type}, op={op}, "
            f"size_bytes={size_bytes}, value_kind={value_kind}"
        ) from None


def encode_access(access: MemoryAccess) -> Tuple[int, int]:
    """``(type_code, value_delta)`` for one access record."""
    value_kind, delta = encode_value(access.value)
    think = access.think_instructions
    if think > _MAX_EXACT_GAP:
        raise TraceCodecError(f"think_instructions too large for exact f8: {think}")
    return code_for(access.access_type, access.op, access.size_bytes, value_kind), delta


def pack_accesses(accesses: Sequence[MemoryAccess]) -> np.ndarray:
    """Pack one core's access list into a structured array (phase left 0)."""
    n = len(accesses)
    array = np.empty(n, dtype=ACCESS_DTYPE)
    codes = array["type_code"]
    addresses = array["address"]
    deltas = array["value_delta"]
    gaps = array["compute_gap"]
    for index, access in enumerate(accesses):
        code, delta = encode_access(access)
        codes[index] = code
        addresses[index] = access.address
        deltas[index] = delta
        gaps[index] = access.think_instructions
    array["phase"] = 0
    return array


def decode_values(array: np.ndarray) -> list:
    """Decode the value column of a packed array into Python objects.

    Vectorized: one pass per value kind present, no per-element branching.
    """
    raw = array["value_delta"]
    kinds = _VK_LUT[array["type_code"]]
    out = raw.astype(object)  # Python ints (the VK_INT case)
    mask = kinds == VK_FLOAT
    if mask.any():
        out[mask] = raw.view(np.float64).astype(object)[mask]
    mask = kinds == VK_UINT
    if mask.any():
        out[mask] = raw.view(np.uint64).astype(object)[mask]
    mask = kinds == VK_NONE
    if mask.any():
        out[mask] = None
    return out.tolist()


def unpack_accesses(array: np.ndarray) -> Trace:
    """Unpack a structured array back into a list of :class:`MemoryAccess`."""
    codes = array["type_code"].tolist()
    addresses = array["address"].tolist()
    gaps = array["compute_gap"].tolist()
    values = decode_values(array)
    types = CODE_ACCESS_TYPE
    ops = CODE_OP
    sizes = CODE_SIZE
    new = MemoryAccess.__new__
    trace: Trace = []
    append = trace.append
    for index, code in enumerate(codes):
        # Fields were validated when the trace was first built; __new__ plus
        # slot stores skips re-running the constructor checks per access.
        access = new(MemoryAccess)
        access.access_type = types[code]
        access.address = addresses[index]
        access.op = ops[code]
        access.value = values[index]
        access.think_instructions = int(gaps[index])
        access.size_bytes = sizes[code]
        append(access)
    return trace


def make_columns(codes, addresses, deltas, gaps) -> np.ndarray:
    """Assemble a packed per-core array from parallel column values.

    Used by vectorized workload builders; each argument may be a NumPy array,
    a Python sequence, or a scalar (broadcast).  ``deltas`` must already be
    int64-encoded (see :func:`encode_value` / :func:`float_deltas`).
    """
    n = max(
        np.shape(column)[0]
        for column in (codes, addresses, deltas, gaps)
        if np.ndim(column)
    )
    array = np.empty(n, dtype=ACCESS_DTYPE)
    array["type_code"] = codes
    array["address"] = addresses
    array["value_delta"] = deltas
    array["compute_gap"] = gaps
    array["phase"] = 0
    return array


def float_deltas(values) -> np.ndarray:
    """Encode float operand values as int64 bit patterns (vectorized)."""
    return np.asarray(values, dtype=np.float64).view(np.int64)


class ColumnBuilder:
    """Incremental builder of one core's packed columns.

    For generators whose control flow is inherently sequential (RNG draws
    that depend on earlier draws), building plain int/float lists and packing
    once at the end is still several times faster than constructing a
    :class:`MemoryAccess` object per record.
    """

    __slots__ = ("codes", "addresses", "deltas", "gaps")

    def __init__(self) -> None:
        self.codes: List[int] = []
        self.addresses: List[int] = []
        self.deltas: List[int] = []
        self.gaps: List[int] = []

    def append(self, code: int, address: int, delta: int, gap: int) -> None:
        self.codes.append(code)
        self.addresses.append(address)
        self.deltas.append(delta)
        self.gaps.append(gap)

    def extend_objects(self, accesses: Sequence[MemoryAccess]) -> None:
        """Append already-materialized accesses (SNZI/Refcache helpers)."""
        for access in accesses:
            code, delta = encode_access(access)
            self.append(code, access.address, delta, access.think_instructions)

    def __len__(self) -> int:
        return len(self.codes)

    def build(self) -> np.ndarray:
        array = np.empty(len(self.codes), dtype=ACCESS_DTYPE)
        array["type_code"] = self.codes
        array["address"] = self.addresses
        array["value_delta"] = self.deltas
        array["compute_gap"] = self.gaps
        array["phase"] = 0
        return array


class ColumnarTrace:
    """Packed traces for all cores plus workload metadata.

    The columnar dual of :class:`~repro.sim.access.WorkloadTrace`: ``columns``
    holds one structured array per core (index == core id), and
    ``phase_boundaries`` has the same meaning and layout as on the object
    form.  The simulator consumes this form natively; the converters are
    exact in both directions.
    """

    __slots__ = ("name", "columns", "params", "phase_boundaries", "_shm")

    def __init__(
        self,
        name: str,
        columns: List[np.ndarray],
        params: Optional[dict] = None,
        phase_boundaries: Optional[List[List[int]]] = None,
    ) -> None:
        self.name = name
        self.columns = [np.asarray(column, dtype=ACCESS_DTYPE) for column in columns]
        self.params = params if params is not None else {}
        self.phase_boundaries = phase_boundaries
        #: Shared-memory segment backing ``columns``, if attached (kept alive
        #: here so the buffer outlives every view into it).
        self._shm = None
        if phase_boundaries:
            self._fill_phase_column()

    def _fill_phase_column(self) -> None:
        """Derive the informational per-access phase index from boundaries."""
        boundaries = np.asarray(self.phase_boundaries, dtype=np.int64)
        for core_id, column in enumerate(self.columns):
            if not len(column):
                continue
            if not column.flags.writeable:
                continue  # shared-memory view: phase was filled by the owner
            counts = boundaries[:, core_id]
            # phase[j] == number of boundaries <= j.  Boundaries are
            # cumulative (monotone), so a searchsorted over the access
            # indices computes every phase at once.
            if np.all(counts[:-1] <= counts[1:]):
                column["phase"] = np.searchsorted(
                    counts, np.arange(len(column)), side="right"
                ).astype(np.uint32)
            else:  # pathological non-monotone boundaries: exact O(P*N) count
                column["phase"] = np.count_nonzero(
                    counts[None, :] <= np.arange(len(column))[:, None], axis=1
                ).astype(np.uint32)

    # -- conversions -----------------------------------------------------------

    @classmethod
    def from_workload(cls, trace: WorkloadTrace) -> "ColumnarTrace":
        """Pack an object-form trace; exact and order-preserving."""
        columns = [pack_accesses(core_trace) for core_trace in trace.per_core]
        boundaries = (
            [list(bounds) for bounds in trace.phase_boundaries]
            if trace.phase_boundaries is not None
            else None
        )
        return cls(
            name=trace.name,
            columns=columns,
            params=dict(trace.params),
            phase_boundaries=boundaries,
        )

    def to_workload(self) -> WorkloadTrace:
        """Unpack to the object form; exact and order-preserving."""
        boundaries = (
            [list(bounds) for bounds in self.phase_boundaries]
            if self.phase_boundaries is not None
            else None
        )
        return WorkloadTrace(
            name=self.name,
            per_core=[unpack_accesses(column) for column in self.columns],
            params=dict(self.params),
            phase_boundaries=boundaries,
        )

    # -- WorkloadTrace-compatible reporting API --------------------------------

    @property
    def n_cores(self) -> int:
        return len(self.columns)

    @property
    def total_accesses(self) -> int:
        return sum(len(column) for column in self.columns)

    @property
    def total_instructions(self) -> int:
        """Total instructions (memory + think) across all cores."""
        return sum(
            len(column) + int(column["compute_gap"].astype(np.int64).sum())
            for column in self.columns
        )

    @property
    def nbytes(self) -> int:
        """Packed size of all per-core arrays."""
        return sum(column.nbytes for column in self.columns)

    def update_read_counts(self) -> Tuple[int, int]:
        """``(update_accesses, read_accesses)`` per ``AccessType.is_update``."""
        updates = sum(
            int(np.count_nonzero(column["type_code"] >= UPDATE_MIN_CODE))
            for column in self.columns
        )
        return updates, self.total_accesses - updates

    def commutative_fraction(self) -> float:
        """Fraction of instructions that are commutative/atomic updates."""
        updates = sum(
            int(np.count_nonzero(column["type_code"] >= COMM_MIN_CODE))
            for column in self.columns
        )
        total = self.total_instructions
        return updates / total if total else 0.0

    def validate(self) -> None:
        """Sanity-check the phase structure (mirrors WorkloadTrace)."""
        if self.phase_boundaries is None:
            return
        for boundaries in self.phase_boundaries:
            if len(boundaries) != self.n_cores:
                raise ValueError("each phase boundary must list one index per core")
            for core_id, bound in enumerate(boundaries):
                if not 0 <= bound <= len(self.columns[core_id]):
                    raise ValueError(
                        f"phase boundary {bound} out of range for core {core_id}"
                    )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColumnarTrace):
            return NotImplemented
        return (
            self.name == other.name
            and self.params == other.params
            and self.phase_boundaries == other.phase_boundaries
            and len(self.columns) == len(other.columns)
            and all(
                np.array_equal(mine, theirs)
                for mine, theirs in zip(self.columns, other.columns)
            )
        )

    # -- persistence -----------------------------------------------------------

    def save_npz(self, path: str, extra_meta: Optional[dict] = None) -> None:
        """Persist to a compressed ``.npz`` file (atomic replace).

        Packed access streams deflate extremely well (repeated type codes
        and think gaps, arithmetic address sequences): ~2-3 bytes per access
        on disk vs 29 in memory, for milliseconds of zlib time.

        ``extra_meta`` is stored alongside the trace metadata and surfaced
        by :func:`load_npz_meta`; the sweep engine's trace store uses it to
        verify that a cache file really holds the trace its name claims.
        """
        meta = {"name": self.name, "params": self.params}
        if extra_meta:
            meta["extra"] = extra_meta
        payload = {f"core_{i}": column for i, column in enumerate(self.columns)}
        payload["meta"] = np.array(json.dumps(meta, sort_keys=True))
        if self.phase_boundaries is not None:
            payload["boundaries"] = np.asarray(self.phase_boundaries, dtype=np.int64)
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".npz.tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez_compressed(handle, **payload)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    @classmethod
    def load_npz(cls, path: str) -> "ColumnarTrace":
        """Load a trace previously written by :meth:`save_npz`."""
        trace, _extra = cls.load_npz_with_meta(path)
        return trace

    @classmethod
    def load_npz_with_meta(cls, path: str) -> Tuple["ColumnarTrace", Optional[dict]]:
        """Load a trace plus the ``extra_meta`` it was saved with."""
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"][()]))
            columns = []
            index = 0
            while f"core_{index}" in data:
                columns.append(np.asarray(data[f"core_{index}"], dtype=ACCESS_DTYPE))
                index += 1
            boundaries = None
            if "boundaries" in data:
                boundaries = [list(map(int, row)) for row in data["boundaries"]]
        trace = cls(
            name=meta["name"],
            columns=columns,
            params=meta["params"],
            phase_boundaries=boundaries,
        )
        return trace, meta.get("extra")


def as_columnar(trace) -> ColumnarTrace:
    """Coerce either trace form to columnar (no-op for ColumnarTrace)."""
    if isinstance(trace, ColumnarTrace):
        return trace
    return ColumnarTrace.from_workload(trace)


def as_workload(trace) -> WorkloadTrace:
    """Coerce either trace form to the object form (no-op for WorkloadTrace)."""
    if isinstance(trace, ColumnarTrace):
        return trace.to_workload()
    return trace
