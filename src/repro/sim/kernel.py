"""Batched columnar simulation kernel: vectorized hit-run scanning.

The scalar columnar loop (:meth:`MulticoreSimulator._run_columnar_scalar`)
interprets one access per Python iteration, even though on hit-friendly
workloads the overwhelming majority of accesses are private L1 hits that
change no coherence state visible to any other core.  This kernel removes
the interpreter from that common case:

* Each core's private L1 residency and stable states are mirrored into flat
  NumPy arrays (:class:`~repro.hierarchy.cache.TagArray`), kept coherent
  with the object caches only at slow-path boundaries.
* Per chunk of the columnar trace (a window of up to ``REPRO_BATCH_SIZE``
  accesses), the "is this a private L1 hit in a stable state?" predicate is
  evaluated for the whole chunk at once against the tag mirror
  (:meth:`CoherenceProtocol.hot_mask`).  The resulting mask is *reused*
  across the slow accesses inside the window: after a coherence action the
  executing core lazily re-evaluates just the entries its next runs consume
  (a clean-watermark, amortized O(1) per access), and touched cores repair
  exactly their touched line's occurrences — so classification cost
  amortizes over the window even when hit-runs are short.
* A *hit-run* — a maximal hot prefix of the mask — is advanced with O(1)
  Python work: clocks, compute/memory cycles, latency, per-type counters,
  and LRU order are all computed with NumPy reductions over the run.  The
  first non-hit drops into the same inline-probe / :meth:`resolve_slow`
  machinery the scalar loop uses.

Bit-identity
------------

Results are bit-identical to the scalar loop (pinned by the golden
fingerprints and the batch-boundary grids in ``tests/sim/``), which rests on
three invariants:

1. **Hits commute across cores.**  A private L1 hit touches only per-core
   state (the core's clock, statistics, cache LRU, its own line states and
   delta buffers) plus per-address functional values that no other core can
   concurrently touch: a line written on the hit path is held in E/M (or
   buffered in U), so any other core's access to it must first take the
   globally ordered slow path.  Reordering hit-runs of *different* cores is
   therefore unobservable.  (Two deliberate guards keep the observable dict
   orders pinned: ``SimulationResult.to_jsonable`` emits ``final_values``
   sorted, and a U-state update whose delta buffer does not exist yet
   classifies slow — see :meth:`MeusiProtocol.batch_uop_code`.)
2. **Slow accesses are executed in exact scalar order.**  The scheduler
   replays the scalar loop's ``(clock, core_id)`` heap order for every
   potentially-slow access: before a slow access executes at priority
   ``(t, c)``, every other core has been advanced through exactly those hits
   whose heap priority precedes ``(t, c)``, and through no more.  A core's
   first *possible* slow access is known from its classified hit-run, which
   is what bounds how far other cores may run ahead.
3. **Float arithmetic replays the scalar op sequence.**  When every timing
   constant (CPI, issue overheads, L1 latency) is a dyadic rational with at
   most 8 fractional bits — true for every shipped configuration — all the
   scalar loop's partial sums are exact in float64 (non-negative addends,
   magnitudes capped by a runtime guard), so order of summation cannot
   change a single bit and closed-form NumPy reductions are used.  Any
   other configuration, or a run that exceeds the magnitude guard, uses the
   fold pipeline instead: ``np.cumsum`` (strictly sequential accumulation)
   over the same per-access addend sequence the scalar loop folds, which
   reproduces every partial sum bit-for-bit unconditionally.

Fallback
--------

The kernel handles engines that opt in via
:attr:`CoherenceProtocol.SUPPORTS_BATCH_KERNEL`; everything else uses the
scalar loop.  ``REPRO_SIM_KERNEL`` selects ``auto`` (default), ``batch``
(always batch), or ``scalar`` (never batch).  In ``auto`` the kernel and the
scalar loop alternate on identical state: the kernel measures itself per
probation interval and bails out when a stretch of the workload is too
slow-path-heavy to batch, and the scalar loop hands hot stretches (long
global hit streaks) back — see ``MulticoreSimulator._run_columnar``.
``REPRO_BATCH_SIZE`` bounds the classification window.
"""

from __future__ import annotations

import os
import time
from typing import List, Optional, Tuple

import numpy as np

from repro.core.directory import DirectoryArray
from repro.core.protocol import SHAPE_CONFLICT, SHAPE_OP_DEPENDENT
from repro.core.states import StableState
from repro.hierarchy.cache import (
    STATE_ABSENT,
    STATE_EXCLUSIVE,
    STATE_MODIFIED,
    STATE_SHARED,
    STATE_UPDATE,
    TAG_EMPTY,
    TagArray,
    UOP_NONE,
)
from repro import obs as _obs
from repro.sim.access import MemoryAccess
from repro.sim.columnar import (
    CODE_ACCESS_TYPE,
    CODE_KIND,
    CODE_OP,
    CODE_OP_INDEX,
    CODE_SIZE,
    CODE_VALUE_KIND,
    ColumnarTrace,
    KIND_LOAD,
    KIND_STORE,
    decode_value,
    decode_values,
)
from repro.sim.stats import CoreStats

#: StableState -> TagArray state code (None covers untracked lines).
_STATE_CODE = {
    None: STATE_ABSENT,
    StableState.INVALID: STATE_ABSENT,
    StableState.SHARED: STATE_SHARED,
    StableState.EXCLUSIVE: STATE_EXCLUSIVE,
    StableState.MODIFIED: STATE_MODIFIED,
    StableState.UPDATE: STATE_UPDATE,
}

#: Python-level twin of the NumPy kind table, for the one-access-at-a-time
#: boundary path (indexing a tuple beats indexing a NumPy array from Python).
_KIND_OF_CODE = tuple(int(kind) for kind in CODE_KIND)

#: Default upper bound on the classification window (accesses per chunk).
DEFAULT_BATCH_SIZE = 4096
#: Windows start here and double every time one is consumed fully hot.
MIN_WINDOW = 64

#: Closed-form reductions require every partial sum to stay exactly
#: representable: addends are non-negative dyadic rationals with <= 8
#: fractional bits, so sums are exact while below 2**53 / 2**8 = 2**45.
#: The guard trips well before that.
_EXACT_CLOCK_LIMIT = float(1 << 44)

#: Bail-out probation: every ``BAIL_INTERVAL`` slow accesses the kernel
#: compares its measured wall-clock for the interval against a conservative
#: estimate of what the scalar loop would have spent on the same work
#: (``hits * BAIL_SCALAR_HIT_S + slow * BAIL_SCALAR_SLOW_S``).  Two
#: consecutive intervals slower than the estimate (by ``BAIL_MARGIN``) hand
#: the run off to the scalar loop.  Judging per interval — not cumulatively
#: — lets workloads with a miss-heavy warm-up phase reach their hit-run
#: regime instead of being condemned by their first thousand accesses; the
#: scalar cost constants are deliberately rough (the decision margins are
#: large: the kernel is either several times faster or clearly losing).
BAIL_INTERVAL = 64
BAIL_SCALAR_HIT_S = 1.2e-6
BAIL_SCALAR_SLOW_S = 12e-6
BAIL_MARGIN = 1.15
BAIL_STRIKES = 2

#: The very first probation check of a stint fires after this many slow
#: events instead of a full ``BAIL_INTERVAL``: a stint entering a
#: conflict-dense stretch (group retirement's entry gate failing, every
#: boundary access paying full mask-repair cost) should hand off after a
#: handful of events, not sixty-four of them.  A productive group-retirement
#: call resets probation to the full interval, so healthy stints are never
#: judged on the short window.
BAIL_PROBE = 16

#: The scalar-cost constants above were calibrated on one machine; a host
#: whose interpreter is uniformly slower runs both loops slower, which would
#: otherwise make the kernel look like it is losing and bail spuriously.
#: A tiny dict/int workout — the scalar loop's op mix — measured once per
#: process rescales the estimate to the host (clamped to a sane range).
_CALIBRATION_NOMINAL_S = 0.009
_calibration_factor: Optional[float] = None


def _interpreter_speed_factor() -> float:
    global _calibration_factor
    if _calibration_factor is None:
        # repro-lint: disable=D103(calibration for the bail heuristic; feeds only kernel-vs-scalar dispatch whose outcomes are bit-identical)
        start = time.perf_counter()
        scratch: dict = {}
        x = 0
        for i in range(50_000):
            scratch[i & 1023] = x
            x += scratch.get(i & 511, 0) & 7
        # repro-lint: disable=D103(calibration for the bail heuristic; feeds only kernel-vs-scalar dispatch whose outcomes are bit-identical)
        elapsed = time.perf_counter() - start
        _calibration_factor = min(8.0, max(0.25, elapsed / _CALIBRATION_NOMINAL_S))
    return _calibration_factor
#: An interval this much over the scalar estimate bails without a second
#: strike — the kernel is clearly losing, and on short traces every wasted
#: interval is a measurable fraction of the run.
BAIL_HARD_MARGIN = 2.5

_VALID_MODES = ("auto", "batch", "scalar")


def kernel_mode() -> str:
    """Kernel selection from ``REPRO_SIM_KERNEL`` (``auto`` when unset)."""
    mode = os.environ.get("REPRO_SIM_KERNEL", "auto").strip().lower()
    return mode if mode in _VALID_MODES else "auto"


def batch_size() -> int:
    """Classification-window bound from ``REPRO_BATCH_SIZE`` (min 1)."""
    try:
        size = int(os.environ.get("REPRO_BATCH_SIZE", DEFAULT_BATCH_SIZE))
    except ValueError:
        return DEFAULT_BATCH_SIZE
    return max(1, size)


_SLOW_BATCH_MODES = ("auto", "off")

#: Minimum number of *independence-classified* parked slow events (the best
#: event plus at least one other) before the group-retirement merge is
#: entered; with a single pending event the scalar boundary path is already
#: optimal and the merge's per-call setup would be pure overhead.
FLEET_MIN_PARKED = 2

#: Consecutive hit retirements after which the merge returns (scaled up with
#: the slot count): hit-dense stretches belong to the vectorized window
#: pipeline, which retires them an order of magnitude faster than the
#: merge's inline probe.
FLEET_STREAK_BASE = 64

#: Upper bound on one merge call, so the kernel's bail heuristic keeps
#: sampling wall-clock at a bounded period.
FLEET_MAX_RETIRE = 65536

#: Slow events per participating slot a merge call must retire to count as
#: productive.  An unproductive call (hit-dense or conflict-dense stretch)
#: starts a cooldown — the merge is not attempted again for the next
#: ``_fleet_backoff`` slow events — and the backoff doubles up to
#: :data:`FLEET_COOLDOWN_MAX` while calls stay unproductive, so a workload
#: phase the merge cannot help costs a geometrically vanishing overhead.
FLEET_MIN_YIELD = 4
FLEET_COOLDOWN = 64
FLEET_COOLDOWN_MAX = 4096

#: Cooldown after the vectorized entry gate predicts a conflict.  The gate
#: itself is a few microseconds of numpy, so unlike a wasted engine call it
#: earns only a small flat cooldown: conflict predictions are transient
#: (one reduction, one cross-op stretch) and backing off exponentially was
#: measured to starve the merge on workloads that alternate regimes.
FLEET_GATE_COOLDOWN = 8


def slow_batch_mode() -> str:
    """Group retirement from ``REPRO_SLOW_BATCH`` (``auto`` when unset).

    ``auto`` retires independent slow accesses in groups via
    :meth:`CoherenceProtocol.resolve_slow_batch` whenever the engine declares
    support; ``off`` forces the exact one-at-a-time boundary path.  Both are
    bit-identical — the switch exists for A/B timing and debugging.
    """
    mode = os.environ.get("REPRO_SLOW_BATCH", "auto").strip().lower()
    return mode if mode in _SLOW_BATCH_MODES else "auto"


def _dyadic(value: float, bits: int = 8) -> bool:
    """Whether ``value`` is a non-negative multiple of ``2**-bits``."""
    return value >= 0 and float(value * (1 << bits)).is_integer()


class _BatchCore:
    """Per-core cursor plus the current window's classification state."""

    __slots__ = (
        "core_id",
        "clock",
        "next_index",
        "phase",
        "trace_len",
        "limit",
        "at_barrier",
        "done",
        "tags",
        "stale",
        "class_valid",
        "window",
        # -- classified window (mask pipeline; None when absent) --------------
        "win_start",
        "win_len",
        "win_lines",
        "win_sets",
        "win_kinds",
        "win_states",
        "win_codes",
        "win_addrs",
        "win_t",
        "win_addends",
        "mask",
        "cold_idx",
        "clean_hi",
        # -- current hit-run ---------------------------------------------------
        "run_off",
        "hot_len",
        "applied",
        "end_reason",  # "slow" | "window" | "limit"
        "slow_priority",
        "pop_clocks",
        "end_clocks",
        "cc_fold",
        "mc_fold",
        "l1_fold",
        "cnt_folds",
        "values",
    )

    def __init__(self, core_id: int, trace_len: int, l1_config) -> None:
        self.core_id = core_id
        self.clock = 0.0
        self.next_index = 0
        self.phase = 0
        self.trace_len = trace_len
        self.limit = trace_len
        self.at_barrier = False
        self.done = False
        self.tags = TagArray(l1_config)
        self.stale = True
        self.class_valid = False
        self.window = MIN_WINDOW
        self.win_start = 0
        self.win_len = 0
        self.win_lines = None
        self.win_sets = None
        self.win_kinds = None
        self.win_states = None
        self.win_codes = None
        self.win_addrs = None
        self.win_t = None
        self.win_addends = None
        self.mask = None
        self.cold_idx = None
        self.clean_hi = 0
        self.run_off = 0
        self.hot_len = 0
        self.applied = 0
        self.end_reason = "limit"
        self.slow_priority = 0.0
        self.pop_clocks = None
        self.end_clocks = None
        self.cc_fold = None
        self.mc_fold = None
        self.l1_fold = None
        self.cnt_folds = None
        self.values = None


class BatchedKernel:
    """One batched simulation of a :class:`ColumnarTrace`.

    Construct with the owning :class:`MulticoreSimulator` and the trace, call
    :meth:`run`; ``None`` means the simulation completed (final cursors and
    statistics are on the kernel), otherwise the returned handoff resumes the
    scalar loop mid-run (see :meth:`MulticoreSimulator._run_columnar_scalar`).
    """

    __slots__ = (
        "simulator",
        "workload",
        "force",
        "protocol",
        "columns",
        "codes_col",
        "addrs_col",
        "gaps_col",
        "deltas_col",
        "n_cores",
        "core_stats",
        "phase_boundaries",
        "n_phases",
        "cores",
        "_cpi",
        "_atomic_overhead",
        "_commutative_overhead",
        "_l1_latency",
        "_l2_latency",
        "_l1_hit_total",
        "_l2_hit_total",
        "_overhead_by_kind",
        "_line_shift",
        "_shift_u64",
        "_l1_num_sets",
        "_nsets_u64",
        "_core_states",
        "_l1_caches",
        "_l2_caches",
        "_directory_entries",
        "_track_values",
        "_memory_image",
        "_comm_local",
        "_comm_never",
        "_resolve_slow",
        "_slow_batch",
        "_resolve_slow_batch",
        "_shape_table",
        "_dir_array",
        "_dir_stale",
        "_fleet_cooldown",
        "_fleet_backoff",
        "_max_window",
        "_min_window",
        "_exact",
        "_touched",
        "_slow_events",
        "_hits_batched",
        "_bail_next",
        "_bail_hits_mark",
        "_bail_slow_mark",
        "_bail_time_mark",
        "_bail_strikes",
        "_obs",
        "_obs_timing",
    )

    def __init__(
        self,
        simulator,
        workload: ColumnarTrace,
        *,
        force: bool = False,
        resume: Optional[Tuple] = None,
    ) -> None:
        self.simulator = simulator
        self.workload = workload
        self.force = force

        config = simulator.config
        protocol = simulator.protocol
        self.protocol = protocol
        self.columns = workload.columns
        self.codes_col = [column["type_code"] for column in workload.columns]
        self.addrs_col = [column["address"] for column in workload.columns]
        self.gaps_col = [column["compute_gap"] for column in workload.columns]
        self.deltas_col = [column["value_delta"] for column in workload.columns]

        n_cores = workload.n_cores
        self.n_cores = n_cores
        self.core_stats = [CoreStats(core_id=i) for i in range(n_cores)]
        self.phase_boundaries = workload.phase_boundaries or []
        self.n_phases = len(self.phase_boundaries)
        self.cores = [
            _BatchCore(i, len(workload.columns[i]), config.l1d) for i in range(n_cores)
        ]
        if resume is not None:
            # Mid-run re-entry from the scalar loop (see _run_columnar): the
            # handoff state is exactly what _handoff produces, so the two
            # loops can alternate without losing a single access.
            cursor_state, resumed_stats, heap_entries, barrier_ids = resume
            self.core_stats = resumed_stats
            waiting = set(barrier_ids)
            runnable_ids = {core_id for _, core_id in heap_entries}
            for core, (clock, next_index, phase) in zip(self.cores, cursor_state):
                core.clock = clock
                core.next_index = next_index
                core.phase = phase
                if core.core_id in waiting:
                    core.at_barrier = True
                elif core.core_id not in runnable_ids:
                    core.done = True
        for core in self.cores:
            self._update_limit(core)

        # -- hoisted constants (mirrors the scalar loop's hoists) --------------
        core_model = simulator.core_model
        self._cpi = core_model.cycles_per_instruction
        self._atomic_overhead = core_model.atomic_overhead
        self._commutative_overhead = core_model.commutative_overhead
        self._l1_latency = config.l1d.latency
        self._l2_latency = config.l2.latency
        self._l1_hit_total = self._l1_latency + 0.0
        self._l2_hit_total = self._l1_latency + self._l2_latency + 0.0
        self._overhead_by_kind = np.array(
            [
                0.0,
                0.0,
                self._atomic_overhead,
                self._commutative_overhead,
                self._commutative_overhead,
            ]
        )
        self._line_shift = protocol._line_shift
        self._shift_u64 = np.uint64(self._line_shift)
        self._l1_num_sets = config.l1d.num_sets
        self._nsets_u64 = np.uint64(self._l1_num_sets)

        self._core_states = protocol.core_states
        self._l1_caches = protocol._l1_caches
        self._l2_caches = protocol._l2_caches
        self._directory_entries = protocol.directory._entries
        self._track_values = protocol.track_values
        self._memory_image = protocol.memory_image
        self._comm_local = protocol.HOT_COMMUTATIVE == "local"
        self._comm_never = protocol.HOT_COMMUTATIVE == "never"
        self._resolve_slow = protocol.resolve_slow

        # Group retirement (slow-path batching): engines that declare
        # independence-classified transaction shapes retire whole stretches
        # of the simulation — all runnable cores merged in exact
        # (clock, core_id) heap order — in one flattened call, with the
        # vectorized directory mirror gating entry (see _retire_fleet).
        self._slow_batch = slow_batch_mode() != "off" and protocol.slow_batch_ready()
        if self._slow_batch:
            protocol.slow_batch_begin(
                self._cpi, self._atomic_overhead, self._commutative_overhead
            )
            self._resolve_slow_batch = protocol.resolve_slow_batch
            self._shape_table = protocol.SLOW_SHAPE_TABLE
            self._dir_array = DirectoryArray(n_cores)
        else:
            self._resolve_slow_batch = None
            self._shape_table = None
            self._dir_array = None
        self._dir_stale: set = set()
        self._fleet_cooldown = 0
        self._fleet_backoff = FLEET_COOLDOWN

        self._max_window = batch_size()
        self._min_window = min(MIN_WINDOW, self._max_window)
        for core in self.cores:
            core.window = self._min_window

        #: Whether closed-form reductions are exact for this configuration
        #: (see the module docstring); checked per run against the magnitude
        #: guard and demoted permanently if it ever trips.
        self._exact = all(
            _dyadic(value)
            for value in (
                self._cpi,
                self._atomic_overhead,
                self._commutative_overhead,
                float(self._l1_latency),
            )
        )

        # Cross-core invalidation feed: every slow-path _set_state records the
        # (core, line) it touched, so tag mirrors can be repaired in place and
        # classifications invalidated precisely.
        self._touched: set = set()
        protocol.touched_cores = self._touched

        # Bail-out accounting (per-interval wall-clock vs scalar estimate).
        self._slow_events = 0
        self._hits_batched = 0
        self._bail_next = BAIL_PROBE
        self._bail_hits_mark = 0
        self._bail_slow_mark = 0
        # repro-lint: disable=D103(documented bail heuristic; wall time only decides kernel-vs-scalar dispatch, both paths are bit-identical)
        self._bail_time_mark = time.perf_counter()
        self._bail_strikes = 0

        # Telemetry (repro.obs).  Both handles are None when REPRO_OBS=off;
        # every instrumented site below guards on that and sits exclusively
        # on slow paths (stint boundaries, slow-event resolution, merge
        # gates) — never inside _apply's per-access hot loops.  Timing reads
        # route through the registry's clock (the sanctioned wall-clock
        # island); nothing recorded here ever feeds a SimulationResult.
        self._obs = _obs.get_registry()
        self._obs_timing = _obs.timing_registry()
        if self._obs is not None:
            self._obs.inc(
                "kernel.stint.resume" if resume is not None else "kernel.stint.enter"
            )

    # ------------------------------------------------------------ tag mirrors

    def _rebuild_tags(self, core: _BatchCore) -> None:
        """Refill a core's tag mirror from the object L1 (full resync)."""
        core.tags.clear()
        # repro-lint: disable=D102(full resync visits each set exactly once; sets are independent so visit order cannot affect the rebuilt mirror)
        for set_index, cache_set in self._l1_caches[core.core_id]._sets.items():
            if cache_set:
                self._refill_set(core, set_index, cache_set)
        core.stale = False

    def _refill_set(self, core: _BatchCore, set_index: int, cache_set: dict) -> None:
        """Mirror one L1 set's current membership and states."""
        core_id = core.core_id
        tags = core.tags
        states = self._core_states[core_id]
        comm_local = self._comm_local
        protocol = self.protocol
        state_code = _STATE_CODE
        tag_row = tags.tags[set_index]
        state_row = tags.state[set_index]
        uop_row = tags.uop[set_index]
        way = 0
        for line_addr in cache_set:
            code = state_code[states.get(line_addr)]
            tag_row[way] = line_addr
            state_row[way] = code
            if code == STATE_UPDATE and comm_local:
                uop_row[way] = protocol.batch_uop_code(core_id, line_addr)
            else:
                uop_row[way] = UOP_NONE
            way += 1

    def _repair_sets(self, core: _BatchCore, set_indices) -> None:
        """Resync the L1 sets a slow-path action may have rearranged.

        A transaction only moves the executing core's L1 contents in the
        accessed line's set (fills and their silent L1 victims) and in the
        sets of lines whose state it changed (evictions, invalidations —
        all reported via ``touched_cores``), so repairing those sets is a
        full resync at a fraction of a rebuild's cost.
        """
        tags = core.tags
        line_sets = self._l1_caches[core.core_id]._sets
        for set_index in set_indices:
            tags.tags[set_index].fill(TAG_EMPTY)
            tags.state[set_index].fill(STATE_ABSENT)
            tags.uop[set_index].fill(UOP_NONE)
            cache_set = line_sets.get(set_index)
            if cache_set:
                self._refill_set(core, set_index, cache_set)

    # ---------------------------------------------------------- classification

    def _update_limit(self, core: _BatchCore) -> None:
        """Recompute how far the core may run before a barrier or trace end."""
        if core.phase < self.n_phases:
            core.limit = min(
                core.trace_len, self.phase_boundaries[core.phase][core.core_id]
            )
        else:
            core.limit = core.trace_len

    def _compute_window(self, core: _BatchCore) -> None:
        """Slice and pre-digest the next window, then evaluate its hot mask."""
        if core.stale:
            self._rebuild_tags(core)
        core_id = core.core_id
        start = core.next_index
        width = min(core.window, core.limit - start)
        core.win_start = start
        core.win_len = width
        if width <= 0:
            core.mask = None
            return
        codes = self.codes_col[core_id][start : start + width]
        addrs = self.addrs_col[core_id][start : start + width]
        gaps = self.gaps_col[core_id][start : start + width]
        lines = addrs >> self._shift_u64
        kinds = CODE_KIND[codes]
        think = gaps * self._cpi
        t = think + self._overhead_by_kind[kinds]
        core.win_codes = codes
        core.win_addrs = addrs
        core.win_lines = lines
        core.win_sets = lines % self._nsets_u64
        core.win_kinds = kinds
        core.win_t = t
        core.win_addends = t + self._l1_hit_total
        core.win_states = np.empty(width, dtype=np.uint8)
        core.values = None
        self._eval_mask(core, None)
        core.clean_hi = width  # the whole window was just evaluated

    def _eval_mask(self, core: _BatchCore, index: Optional[np.ndarray]) -> None:
        """(Re)evaluate the window's hot mask, fully or at given positions."""
        obs_timing = self._obs_timing
        if obs_timing is not None:
            _obs_t0 = obs_timing.clock()
        tags = core.tags
        if index is None:
            lines = core.win_lines
            sets = core.win_sets
            kinds = core.win_kinds
            codes = core.win_codes
        else:
            lines = core.win_lines[index]
            sets = core.win_sets[index]
            kinds = core.win_kinds[index]
            codes = core.win_codes[index]
        match = tags.tags[sets] == lines[:, None]
        member = match.any(axis=1)
        ways = match.argmax(axis=1)
        states = np.where(member, tags.state[sets, ways], STATE_ABSENT)
        uops = (
            np.where(states == STATE_UPDATE, tags.uop[sets, ways], UOP_NONE)
            if self._comm_local
            else None
        )
        hot = self.protocol.hot_mask(kinds, member, states, uops, CODE_OP_INDEX[codes])
        if index is None:
            core.mask = hot
            core.win_states[:] = states
        else:
            core.mask[index] = hot
            core.win_states[index] = states
        # Entries behind the cursor are consumed and never re-extracted, so
        # the cold-position index only needs the unconsumed tail.
        start = core.next_index - core.win_start
        if start > 0:
            core.cold_idx = np.flatnonzero(~core.mask[start:])
            core.cold_idx += start
        else:
            core.cold_idx = np.flatnonzero(~core.mask)
        if obs_timing is not None:
            obs_timing.observe("eval_mask", obs_timing.clock() - _obs_t0)

    def _clean_prefix(self, core: _BatchCore, offset: int) -> int:
        """Re-evaluate stale entries lazily and return the next run's end.

        Slow-path actions do not touch the window mask eagerly — they repair
        the tag mirror itself (cheap) and lower the core's ``clean_hi``
        watermark to its cursor, marking everything unconsumed as suspect.
        Extraction then re-evaluates exactly the suspect entries the next
        hit-run would consume (including the run-ending entry, which may
        flip hot — e.g. a line that just gained U permission), advancing the
        watermark until the run boundary stabilizes.  Each window entry is
        re-evaluated at most once per disturbance-free stretch before being
        consumed, so cleaning amortizes to O(1) per access no matter how hot
        the disturbed lines are in the rest of the window.
        """
        cold = core.cold_idx
        position = int(np.searchsorted(cold, offset))
        end = int(cold[position]) if position < len(cold) else core.win_len
        if core.clean_hi >= core.win_len:
            return end
        # Exponentially growing chunks: when cleaning flips a chain of
        # entries hot (a line faulted in since the mask was computed), the
        # boundary keeps receding, and chunking caps the number of pipeline
        # invocations at O(log window) while over-cleaning at most as much
        # as the run it exposes.
        chunk = 8
        while True:
            low = max(core.clean_hi, offset)
            bound = min(end + 1, core.win_len)
            if bound <= low:
                break
            bound = min(core.win_len, max(bound, low + chunk))
            self._eval_mask(core, np.arange(low, bound))
            core.clean_hi = bound
            chunk *= 2
            cold = core.cold_idx
            position = int(np.searchsorted(cold, offset))
            end = int(cold[position]) if position < len(cold) else core.win_len
        return end

    def _suspect_mask(self, core: _BatchCore) -> None:
        """Mark the core's unconsumed window entries as needing re-evaluation.

        Used for the core executing a slow access: it always consumes its
        next extracted run in full, so the lazy re-evaluation the watermark
        triggers (:meth:`_clean_prefix`) amortizes to O(1) per access.
        """
        if core.mask is not None:
            core.clean_hi = core.next_index - core.win_start

    def _repair_mask_line(self, core: _BatchCore, line_addr: int) -> None:
        """Re-evaluate another core's window entries for one touched line.

        Touched cores may be mid-run and consume their windows in small
        cuts, so the lazy watermark would re-clean the same entries over
        and over; a targeted repair of just the touched line's occurrences
        is exact (its mirror way was just repaired) and usually a no-op —
        most cross-core touches concern lines outside the window.  It also
        matters for throughput: a MEUSI owner downgraded M->U keeps
        buffering updates to the line locally, so its entries must flip
        back to hot.  If the repair lands inside the currently extracted
        hit-run, the run is re-extracted.
        """
        if core.mask is None:
            return
        index = np.flatnonzero(core.win_lines == line_addr)
        if not index.size:
            return
        keep = index >= core.clean_hi
        if keep.any():
            # Entries past the watermark will be re-evaluated lazily anyway.
            index = index[~keep]
            if not index.size:
                return
        self._eval_mask(core, index)
        if core.class_valid and core.applied < core.hot_len:
            low = core.run_off + core.applied
            high = core.run_off + core.hot_len
            if ((index >= low) & (index < high)).any():
                core.class_valid = False

    def _classify(self, core: _BatchCore) -> None:
        """Extract the next hit-run at the core's cursor (mask pipeline)."""
        offset = core.next_index - core.win_start
        if (
            core.mask is None
            or core.next_index < core.win_start
            or offset >= core.win_len
            or core.stale
        ):
            self._compute_window(core)
            offset = 0
            if core.mask is None:  # at the limit: nothing left to classify
                core.hot_len = 0
                core.applied = 0
                core.run_off = 0
                core.end_reason = "limit"
                core.slow_priority = core.clock
                core.class_valid = True
                return

        obs_timing = self._obs_timing
        if obs_timing is not None:
            _obs_t0 = obs_timing.clock()
            end = self._clean_prefix(core, offset)
            obs_timing.observe("clean_prefix", obs_timing.clock() - _obs_t0)
        else:
            end = self._clean_prefix(core, offset)
        run = end - offset
        core.run_off = offset
        core.hot_len = run
        core.applied = 0
        core.cnt_folds = None  # set only by the sequential-fold pipeline
        core.class_valid = True
        if end < core.win_len:
            core.end_reason = "slow"
        elif core.win_start + core.win_len == core.limit:
            core.end_reason = "limit"
        else:
            core.end_reason = "window"
            # The window was consumed fully hot from this offset: grow the
            # next one so classification amortizes over longer runs.
            core.window = min(core.window * 2, self._max_window)

        if not run:
            core.slow_priority = core.clock
            return

        if self._exact:
            folded = np.cumsum(core.win_addends[offset:end])
            end_clocks = core.clock + folded
            last = float(end_clocks[-1])
            if last < _EXACT_CLOCK_LIMIT:
                pop_clocks = np.empty(run)
                pop_clocks[0] = core.clock
                pop_clocks[1:] = end_clocks[:-1]
                core.end_clocks = end_clocks
                core.pop_clocks = pop_clocks
                core.slow_priority = last
                return
            # Magnitude guard tripped: closed forms are no longer provably
            # exact; demote to the sequential-fold pipeline for good.  Every
            # other core's pending run was classified under the exact regime
            # (no fold arrays), so force those to re-extract too.
            self._exact = False
            for other in self.cores:
                if other is not core:
                    other.class_valid = False
        self._classify_folds(core, offset, end)

    def _classify_folds(self, core: _BatchCore, offset: int, end: int) -> None:
        """Sequential-fold clock/statistic arrays for a non-dyadic config.

        Replays the scalar recurrence
        ``clock = ((clock + think) + overhead) + l1_hit_total``
        as one strictly sequential cumulative sum over the interleaved
        addend sequence (np.cumsum accumulates left to right), and builds
        absolute per-offset values for each statistic the run advances.
        """
        run = end - offset
        core_id = core.core_id
        stats = self.core_stats[core_id]
        kinds_run = core.win_kinds[offset:end]
        think = (
            self.gaps_col[core_id][core.win_start + offset : core.win_start + end]
            * self._cpi
        )
        overhead = self._overhead_by_kind[kinds_run]
        tri = np.empty(3 * run + 1)
        tri[0] = core.clock
        tri[1::3] = think
        tri[2::3] = overhead
        tri[3::3] = self._l1_hit_total
        folded = np.cumsum(tri)
        end_clocks = folded[3::3]
        pop_clocks = np.empty(run)
        pop_clocks[0] = core.clock
        pop_clocks[1:] = end_clocks[:-1]
        core.end_clocks = end_clocks
        core.pop_clocks = pop_clocks
        core.slow_priority = float(end_clocks[-1])
        core.cc_fold = np.cumsum(
            np.concatenate(([stats.compute_cycles], think + overhead))
        )
        core.mc_fold = np.cumsum(
            np.concatenate(([stats.memory_cycles], np.full(run, self._l1_hit_total)))
        )
        core.l1_fold = np.cumsum(
            np.concatenate(([stats.latency.l1], np.full(run, float(self._l1_latency))))
        )
        zero = np.zeros(1, dtype=np.int64)
        core.cnt_folds = [
            np.concatenate((zero, np.cumsum(kinds_run == kind, dtype=np.int64)))
            for kind in range(5)
        ]

    # ------------------------------------------------------------- application

    def _apply(self, core: _BatchCore, cut: int) -> None:
        """Advance the core through hit-run accesses ``[applied, cut)``."""
        begin = core.applied
        if cut <= begin:
            return
        core_id = core.core_id
        stats = self.core_stats[core_id]
        count = cut - begin
        low = core.run_off + begin
        high = core.run_off + cut

        # The fold regime is a per-run property: a run classified under the
        # exact regime has no fold arrays (and its closed forms are valid —
        # its magnitude guard passed), even if the kernel has since demoted
        # to the fold pipeline for future classifications.
        run_exact = core.cnt_folds is None
        if run_exact and count <= 8:
            self._apply_small(core, stats, low, high, count)
            core.clock = float(core.end_clocks[cut - 1])
            core.applied = cut
            core.next_index += count
            self._hits_batched += count
            return

        kinds_seg = core.win_kinds[low:high]
        if run_exact:
            counts = np.bincount(kinds_seg, minlength=5)
            comm_n = int(counts[3])
            remote_n = int(counts[4])
            stats.loads += int(counts[0])
            stats.stores += int(counts[1])
            stats.atomics += int(counts[2])
            stats.commutative_updates += comm_n
            stats.remote_updates += remote_n
            stats.compute_cycles += float(np.sum(core.win_t[low:high]))
            stats.memory_cycles += self._l1_hit_total * count
            stats.latency.l1 += self._l1_latency * count
        else:
            c_load, c_store, c_atomic, c_comm, c_remote = core.cnt_folds
            stats.loads += int(c_load[cut] - c_load[begin])
            stats.stores += int(c_store[cut] - c_store[begin])
            stats.atomics += int(c_atomic[cut] - c_atomic[begin])
            comm_n = int(c_comm[cut] - c_comm[begin])
            remote_n = int(c_remote[cut] - c_remote[begin])
            stats.commutative_updates += comm_n
            stats.remote_updates += remote_n
            stats.compute_cycles = float(core.cc_fold[cut])
            stats.memory_cycles = float(core.mc_fold[cut])
            stats.latency.l1 = float(core.l1_fold[cut])
        stats.accesses += count
        stats.l1_hits += count
        core.clock = float(core.end_clocks[cut - 1])
        if self._comm_local and (comm_n or remote_n):
            self.protocol.stat_local_updates += comm_n + remote_n

        # L1 statistics and LRU: every hit bumps the tick and refreshes the
        # line; after the run each distinct line holds the tick of its last
        # hit, which is what the scalar per-access refresh converges to.
        l1 = self._l1_caches[core_id]
        base_tick = l1._tick
        l1.hits += count
        l1._tick = base_tick + count
        seg_lines = core.win_lines[low:high]
        line_sets = l1._sets
        num_sets = l1._num_sets
        if count <= 64:
            # Short slice: replay the refreshes directly (the last assignment
            # per line wins, exactly as the per-access loop converges).
            tick = base_tick
            for line_addr in seg_lines.tolist():
                tick += 1
                line_sets[line_addr % num_sets][line_addr].last_use = tick
        else:
            distinct, reverse_first = np.unique(seg_lines[::-1], return_index=True)
            last_offsets = (count - 1) - reverse_first
            for line_addr, offset in zip(distinct.tolist(), last_offsets.tolist()):
                line_sets[line_addr % num_sets][line_addr].last_use = (
                    base_tick + offset + 1
                )

        # Write permission upgrades: stores/atomics/folded updates against an
        # E copy leave the line in M (U-state buffering does not).
        states_seg = core.win_states[low:high]
        write_mask = (kinds_seg != KIND_LOAD) & (states_seg != STATE_UPDATE)
        if write_mask.any():
            state_map = self._core_states[core_id]
            modified = StableState.MODIFIED
            for line_addr in np.unique(seg_lines[write_mask]).tolist():
                state_map[line_addr] = modified

        # Functional updates (tracked-value runs only), replaying the scalar
        # per-access dict operations in program order.
        if self._track_values:
            update_offsets = np.flatnonzero(kinds_seg != KIND_LOAD)
            if update_offsets.size:
                if core.values is None:
                    core.values = decode_values(
                        self.columns[core_id][
                            core.win_start : core.win_start + core.win_len
                        ]
                    )
                values = core.values
                lines_win = core.win_lines
                kinds_win = core.win_kinds
                states_win = core.win_states
                codes_win = core.win_codes
                addrs_win = core.win_addrs
                memory_image = self._memory_image
                protocol = self.protocol
                code_op = CODE_OP
                for rel in update_offsets.tolist():
                    j = low + rel
                    value = values[j]
                    if value is None:
                        continue
                    address = int(addrs_win[j])
                    if kinds_win[j] == KIND_STORE:
                        memory_image[address] = value
                    elif states_win[j] == STATE_UPDATE:
                        op = code_op[codes_win[j]]
                        buffer = protocol._buffer_for(core_id, int(lines_win[j]), op)
                        buffer.update(address, value)
                    else:
                        op = code_op[codes_win[j]]
                        if op is not None:
                            current = memory_image.get(address, op.identity)
                            memory_image[address] = op.apply(current, value)

        core.applied = cut
        core.next_index += count
        self._hits_batched += count

    def _apply_small(
        self, core: _BatchCore, stats: CoreStats, low: int, high: int, count: int
    ) -> None:
        """Fused scalar advance for short slices (exact regime only).

        Tight interleaves shatter hit-runs into slices of a few hits; the
        vectorized reductions in :meth:`_apply` cost more than the
        interpreter work they replace there.  Everything folds with scalar
        arithmetic, which is bit-identical because in the exact regime every
        addend is dyadic — grouping cannot change a bit.
        """
        core_id = core.core_id
        kinds_l = core.win_kinds[low:high].tolist()
        lines_l = core.win_lines[low:high].tolist()
        states_l = core.win_states[low:high].tolist()
        l1 = self._l1_caches[core_id]
        tick = l1._tick
        l1.hits += count
        line_sets = l1._sets
        num_sets = l1._num_sets
        state_map = self._core_states[core_id]
        modified = StableState.MODIFIED
        memory_image = self._memory_image
        track = self._track_values
        comm_n = 0
        if track and core.values is None:
            core.values = decode_values(
                self.columns[core_id][core.win_start : core.win_start + core.win_len]
            )
        values = core.values
        for offset in range(count):
            kind = kinds_l[offset]
            line_addr = lines_l[offset]
            tick += 1
            line_sets[line_addr % num_sets][line_addr].last_use = tick
            if kind == 0:
                stats.loads += 1
                continue
            state = states_l[offset]
            if kind == 1:
                stats.stores += 1
            elif kind == 2:
                stats.atomics += 1
            elif kind == 3:
                stats.commutative_updates += 1
                comm_n += 1
            else:
                stats.remote_updates += 1
                comm_n += 1
            if state != STATE_UPDATE:
                state_map[line_addr] = modified
            if track:
                j = low + offset
                value = values[j]
                if value is None:
                    continue
                address = int(core.win_addrs[j])
                if kind == 1:
                    memory_image[address] = value
                elif state == STATE_UPDATE:
                    op = CODE_OP[core.win_codes[j]]
                    self.protocol._buffer_for(core_id, line_addr, op).update(
                        address, value
                    )
                else:
                    op = CODE_OP[core.win_codes[j]]
                    if op is not None:
                        current = memory_image.get(address, op.identity)
                        memory_image[address] = op.apply(current, value)
        l1._tick = tick
        if self._comm_local and comm_n:
            self.protocol.stat_local_updates += comm_n
        stats.compute_cycles += sum(core.win_t[low:high].tolist())
        stats.memory_cycles += self._l1_hit_total * count
        stats.latency.l1 += self._l1_latency * count
        stats.accesses += count
        stats.l1_hits += count

    # ------------------------------------------------------- boundary accesses

    def _execute_one(self, core: _BatchCore) -> None:
        """Interpret the single access that ended a hit-run.

        Line-for-line equivalent to the scalar columnar loop's per-access
        body (inline probe, local resolution, or :meth:`resolve_slow`), plus
        the incremental tag-mirror and hot-mask maintenance the batched
        classification needs.  Any change here must mirror
        :meth:`MulticoreSimulator._run_columnar_scalar`.
        """
        core_id = core.core_id
        index = core.next_index
        code = int(self.codes_col[core_id][index])
        address = int(self.addrs_col[core_id][index])
        gap = float(self.gaps_col[core_id][index])
        core.next_index = index + 1
        core.class_valid = False
        stats = self.core_stats[core_id]
        protocol = self.protocol

        kind = _KIND_OF_CODE[code]
        is_comm = False
        if kind == 0:
            overhead = 0.0
            stats.loads += 1
        elif kind == 1:
            overhead = 0.0
            stats.stores += 1
        elif kind == 2:
            overhead = self._atomic_overhead
            stats.atomics += 1
        elif kind == 3:
            overhead = self._commutative_overhead
            stats.commutative_updates += 1
            is_comm = True
        else:
            overhead = self._commutative_overhead
            stats.remote_updates += 1
            is_comm = True

        think = gap * self._cpi
        issue_time = core.clock + think

        hit_level = 0
        result = None
        line_addr = address >> self._line_shift
        states = self._core_states[core_id]
        state = states.get(line_addr)
        level = None
        promoted_victim = None
        promoted = False
        if state is not None and (
            (not self._comm_never) if is_comm else (state is not StableState.UPDATE)
        ):
            # Same hand-duplicated private probe as the scalar loops (see the
            # WARNING in CoherenceProtocol._private_level).
            l1 = self._l1_caches[core_id]
            cache_set = l1._sets.get(line_addr % l1._num_sets)
            info = cache_set.get(line_addr) if cache_set is not None else None
            if info is not None:
                l1.hits += 1
                l1._tick = tick = l1._tick + 1
                info.last_use = tick
                level = 1
            else:
                l1.misses += 1
                l2 = self._l2_caches[core_id]
                cache_set = l2._sets.get(line_addr % l2._num_sets)
                info = cache_set.get(line_addr) if cache_set is not None else None
                if info is not None:
                    l2.hits += 1
                    l2._tick = tick = l2._tick + 1
                    info.last_use = tick
                    victim_info = l1.insert(line_addr)
                    promoted = True
                    promoted_victim = (
                        victim_info.line_addr if victim_info is not None else None
                    )
                    level = 2
                else:
                    l2.misses += 1
                    level = 0
            if level:
                if kind == 0:  # LOAD
                    if state is not StableState.UPDATE:
                        hit_level = level
                elif state is StableState.MODIFIED or state is StableState.EXCLUSIVE:
                    states[line_addr] = StableState.MODIFIED
                    if self._track_values:
                        if kind == 1:  # STORE
                            value = decode_value(
                                CODE_VALUE_KIND[code],
                                int(self.deltas_col[core_id][index]),
                            )
                            if value is not None:
                                self._memory_image[address] = value
                        else:
                            protocol._functional_update(
                                self._materialize(core_id, index, code, address, gap)
                            )
                    if is_comm and self._comm_local:
                        protocol.stat_local_updates += 1
                    hit_level = level
                elif state is StableState.UPDATE and is_comm and self._comm_local:
                    entry = self._directory_entries.get(line_addr)
                    op = CODE_OP[code]
                    if op is not None and entry is not None and entry.op is op:
                        if self._track_values:
                            protocol._apply_local_update(
                                core_id,
                                self._materialize(core_id, index, code, address, gap),
                            )
                        protocol.stat_local_updates += 1
                        hit_level = level
        if not hit_level:
            access = self._materialize(core_id, index, code, address, gap)
            touched = self._touched
            touched.clear()
            obs_timing = self._obs_timing
            if obs_timing is not None:
                _obs_t0 = obs_timing.clock()
            result = self._resolve_slow(
                core_id, access, line_addr, state, level, issue_time
            )
            if obs_timing is not None:
                obs_timing.observe("resolve_slow", obs_timing.clock() - _obs_t0)
                _obs_t0 = obs_timing.clock()
            # Repair the mirrors the transaction may have moved lines in.
            # The executing core's L1 only changes in the accessed line's set
            # (fills and their silent same-set victims) and in the sets of
            # its own touched lines (evictions, partial reductions); other
            # cores only ever *lose* lines or change state on them
            # (invalidations, downgrades) — all reported via _set_state as
            # (core, line) pairs, repaired way-in-place.
            self_sets = {line_addr % self._l1_num_sets}
            if self._slow_batch:
                dir_stale = self._dir_stale
                dir_stale.add(line_addr)
                for _touched_id, touched_line in touched:
                    dir_stale.add(touched_line)
            if touched:
                cores = self.cores
                n_cores = self.n_cores
                core_states = self._core_states
                state_code_of = _STATE_CODE
                for touched_id, touched_line in touched:
                    if touched_id == core_id:
                        self_sets.add(touched_line % self._l1_num_sets)
                        continue
                    if touched_id >= n_cores:
                        continue
                    other = cores[touched_id]
                    if not other.stale:
                        new_code = state_code_of[
                            core_states[touched_id].get(touched_line)
                        ]
                        uop = UOP_NONE
                        if new_code == STATE_UPDATE and self._comm_local:
                            uop = protocol.batch_uop_code(touched_id, touched_line)
                        other.tags.update_line(touched_line, new_code, uop)
                        self._repair_mask_line(other, touched_line)
                    else:
                        other.class_valid = False
                        other.mask = None
                touched.clear()
            if not core.stale:
                self._repair_sets(core, self_sets)
                self._suspect_mask(core)
            if obs_timing is not None:
                obs_timing.observe("mask_repair", obs_timing.clock() - _obs_t0)
        elif not core.stale:
            # Local resolution: keep the tag mirror coherent incrementally.
            if promoted:
                state_code = _STATE_CODE[states.get(line_addr)]
                uop = UOP_NONE
                if state_code == STATE_UPDATE and self._comm_local:
                    uop = protocol.batch_uop_code(core_id, line_addr)
                if core.tags.place(line_addr, state_code, uop, promoted_victim):
                    # The promotion may have silently evicted a same-set L1
                    # victim (it stays in the L2 with its state intact), so
                    # the unconsumed mask entries must re-evaluate.
                    self._suspect_mask(core)
                else:
                    core.stale = True
                    core.mask = None
            elif (
                is_comm and self._comm_local and state is StableState.UPDATE
            ):
                # A first buffered update makes the line batchable: the
                # mirror learns the op and the line's remaining window
                # entries re-evaluate (typically flipping hot).
                core.tags.set_uop(
                    line_addr, protocol.batch_uop_code(core_id, line_addr)
                )
                self._suspect_mask(core)

        if hit_level:
            latency_record = stats.latency
            latency_record.l1 += self._l1_latency
            if hit_level == 1:
                latency = self._l1_hit_total
            else:
                latency_record.l2 += self._l2_latency
                latency = self._l2_hit_total
            stats.l1_hits += 1
        else:
            latency = result.total_latency
            stats.latency.add(result.latency)
            if result.private_hit:
                stats.l1_hits += 1

        stats.accesses += 1
        stats.compute_cycles += think + overhead
        stats.memory_cycles += latency
        core.clock = issue_time + overhead + latency

    def _materialize(
        self, core_id: int, index: int, code: int, address: int, gap: float
    ) -> MemoryAccess:
        """Build the :class:`MemoryAccess` a protocol call needs (slow path)."""
        access = MemoryAccess.__new__(MemoryAccess)
        access.access_type = CODE_ACCESS_TYPE[code]
        access.address = address
        access.op = CODE_OP[code]
        access.value = decode_value(
            CODE_VALUE_KIND[code], int(self.deltas_col[core_id][index])
        )
        access.think_instructions = int(gap)
        access.size_bytes = CODE_SIZE[code]
        return access

    # --------------------------------------------------------------- scheduler

    def _transition(self, core: _BatchCore) -> None:
        """A core reached its limit: join the phase barrier or finish."""
        core.class_valid = False
        if core.next_index >= core.trace_len and core.phase >= self.n_phases:
            core.done = True
        else:
            core.at_barrier = True

    def _release_barrier(self, waiters: List[_BatchCore]) -> None:
        """Advance every waiting core past the barrier at the barrier time."""
        release_time = max(core.clock for core in waiters)
        for core in waiters:
            core.clock = release_time
            core.phase += 1
            core.at_barrier = False
            core.class_valid = False
            self._update_limit(core)

    def _cut_for(self, core: _BatchCore, best_clock: float, best_id: int) -> int:
        """Number of the core's hit-run accesses ordered before the event.

        Replays the scalar heap's tuple order: a hit popping at ``clock``
        precedes the event at ``(best_clock, best_id)`` iff ``clock <
        best_clock``, or they tie and this core's id is smaller.
        """
        side = "right" if core.core_id < best_id else "left"
        return int(np.searchsorted(core.pop_clocks, best_clock, side=side))

    def run(self) -> Optional[Tuple]:
        """Simulate to completion (``None``) or hand off to the scalar loop."""
        cores = self.cores
        while True:
            runnable = [c for c in cores if not c.done and not c.at_barrier]
            if not runnable:
                waiters = [c for c in cores if c.at_barrier]
                if not waiters:
                    self.protocol.touched_cores = None
                    obs_reg = self._obs
                    if obs_reg is not None:
                        obs_reg.inc("kernel.stint.complete")
                        obs_reg.inc("kernel.slow_events", self._slow_events)
                        obs_reg.inc("kernel.hits_batched", self._hits_batched)
                    return None  # every core finished
                self._release_barrier(waiters)
                continue

            if (
                not self.force
                and self._slow_events >= self._bail_next
                and (not self._slow_batch or self._fleet_cooldown > 0)
            ):
                # Probation is deferred while a group-retirement attempt is
                # pending (cooldown expired): a productive merge vindicates
                # the interval, and judging the stint before the entry gate
                # has even ruled would bail exactly the runs the merge wins.
                # A failed gate or unproductive merge sets a cooldown, so the
                # check resumes on the next iteration for hostile stretches.
                # repro-lint: disable=D103(documented bail heuristic; wall time only decides kernel-vs-scalar dispatch, both paths are bit-identical)
                now = time.perf_counter()
                interval_hits = self._hits_batched - self._bail_hits_mark
                # Group retirement advances _slow_events by whole groups, so
                # the interval can hold more than BAIL_INTERVAL slow events;
                # estimate from the actual count or the comparison is unfair
                # to the kernel exactly when it is winning the most.
                interval_slow = self._slow_events - self._bail_slow_mark
                scalar_estimate = _interpreter_speed_factor() * (
                    interval_hits * BAIL_SCALAR_HIT_S
                    + interval_slow * BAIL_SCALAR_SLOW_S
                )
                elapsed = now - self._bail_time_mark
                if elapsed > scalar_estimate * BAIL_MARGIN:
                    self._bail_strikes += 1
                    if (
                        self._bail_strikes >= BAIL_STRIKES
                        or elapsed > scalar_estimate * BAIL_HARD_MARGIN
                    ):
                        if self._obs is not None:
                            self._obs.inc(
                                "kernel.bail.hard_margin"
                                if elapsed > scalar_estimate * BAIL_HARD_MARGIN
                                else "kernel.bail.strikes"
                            )
                        return self._handoff()
                else:
                    self._bail_strikes = 0
                self._bail_hits_mark = self._hits_batched
                self._bail_slow_mark = self._slow_events
                self._bail_time_mark = now
                self._bail_next = self._slow_events + BAIL_INTERVAL

            for core in runnable:
                if not core.class_valid:
                    self._classify(core)

            # The earliest potentially-slow event, in scalar (clock, id) order.
            best = None
            for core in runnable:
                if core.end_reason == "limit":
                    continue
                if (
                    best is None
                    or core.slow_priority < best.slow_priority
                    or (
                        core.slow_priority == best.slow_priority
                        and core.core_id < best.core_id
                    )
                ):
                    best = core

            if best is None:
                # No pending slow events: every runnable core just drains its
                # hit-run into a barrier or the end of its trace.
                for core in runnable:
                    self._apply(core, core.hot_len)
                    self._transition(core)
                continue

            if best.end_reason == "window":
                # The earliest potential event is only a classification
                # horizon: extend it (nothing executes, so no other core
                # needs to be ordered against it).
                self._apply(best, best.hot_len)
                self._classify(best)
                continue

            # A real slow access at (best_clock, best_id).  If at least one
            # other parked event is independence-classified too, hand the
            # whole fleet of runnable cores to the engine's k-way merge,
            # which replays the exact (clock, core_id) heap order across
            # them in one flattened call (see _retire_fleet).
            if self._slow_batch:
                if self._fleet_cooldown > 0:
                    self._fleet_cooldown -= 1
                    if self._obs is not None:
                        self._obs.inc("kernel.merge.decline.cooldown")
                elif self._retire_fleet(runnable, best):
                    continue

            # Scalar boundary path: advance every other core through exactly
            # the hits that precede the event; a window reload along the way
            # can reveal an even earlier event, in which case restart the
            # selection.
            best_clock = best.slow_priority
            best_id = best.core_id
            earlier_event = False
            for core in runnable:
                if core is best:
                    continue
                while True:
                    applied = core.applied
                    if applied < core.hot_len:
                        # Cheap skip: is the first unapplied hit due at all?
                        first_pop = core.pop_clocks[applied]
                        if first_pop > best_clock or (
                            first_pop == best_clock and core.core_id > best_id
                        ):
                            break
                        self._apply(core, self._cut_for(core, best_clock, best_id))
                        if core.applied < core.hot_len:
                            break  # remaining hits pop after the event
                    if core.end_reason == "window":
                        self._classify(core)
                        continue
                    if core.end_reason == "limit":
                        self._transition(core)
                        break
                    # "slow": this core is parked at its own event.
                    if core.slow_priority < best_clock or (
                        core.slow_priority == best_clock and core.core_id < best_id
                    ):
                        earlier_event = True
                    break
                if earlier_event:
                    break
            if earlier_event:
                continue

            self._apply(best, best.hot_len)
            obs_timing = self._obs_timing
            if obs_timing is not None:
                _obs_t0 = obs_timing.clock()
                self._execute_one(best)
                obs_timing.observe("execute_one", obs_timing.clock() - _obs_t0)
            else:
                self._execute_one(best)
            self._slow_events += 1

    def _retire_fleet(self, runnable: List[_BatchCore], best: _BatchCore) -> bool:
        """Merge-retire every runnable core's pending accesses in one call.

        The scheduler found a real slow event at ``best``; instead of walking
        the boundary one event at a time, hand the whole fleet of runnable
        cores to the engine's ``resolve_slow_batch``, which replays the exact
        scalar ``(clock, core_id)`` heap order across them with a k-way merge
        — bit-identical by construction — and only returns at a true conflict
        boundary (or a hit-streak / retirement cap).  Entry is gated by the
        :class:`DirectoryArray` mirror: the pending parked accesses of all
        slow-parked cores are classified with one vectorized
        ``SLOW_SHAPE_TABLE[mode, kind]`` lookup (plus the op-match rule for
        op-dependent shapes), and the merge is entered only when the best
        event and at least one other parked event classify independent.  The
        mirror is advisory — the engine re-derives every shape from the
        object directory before mutating — so staleness can only cost a
        wasted entry, never exactness.

        Returns ``True`` when the merge retired at least one access (the
        scheduler restarts from fresh classifications); ``False`` leaves
        every core untouched for the exact scalar boundary path.
        """
        # Cheap count gate first: with fewer than two parked events the merge
        # cannot beat the scalar path (checked before any numpy work).
        parked = [core for core in runnable if core.end_reason == "slow"]
        obs_reg = self._obs
        if len(parked) < FLEET_MIN_PARKED:
            if obs_reg is not None:
                obs_reg.inc("kernel.merge.decline.few_parked")
            return False

        # Vectorized entry gate over the parked accesses (advisory mirror).
        darr = self._dir_array
        directory = self.protocol.directory
        if self._dir_stale:
            darr.sync_lines(self._dir_stale, directory)
            self._dir_stale.clear()
        codes_col = self.codes_col
        addrs_col = self.addrs_col
        idxs = [
            core.next_index + core.hot_len - core.applied for core in parked
        ]
        codes_g = np.array(
            [codes_col[core.core_id][i] for core, i in zip(parked, idxs)]
        )
        lines_g = (
            np.array(
                [addrs_col[core.core_id][i] for core, i in zip(parked, idxs)],
                dtype=np.uint64,
            )
            >> self._shift_u64
        )
        rows = darr.rows_for(lines_g, directory)
        shapes = self._shape_table[darr.mode[rows], CODE_KIND[codes_g]]
        ok = shapes != SHAPE_CONFLICT
        opdep = shapes == SHAPE_OP_DEPENDENT
        if opdep.any():
            ok &= ~opdep | (darr.op[rows] == CODE_OP_INDEX[codes_g])
        best_ok = False
        n_ok = 0
        for k, core in enumerate(parked):
            if ok[k]:
                n_ok += 1
                if core is best:
                    best_ok = True
        if not best_ok or n_ok < FLEET_MIN_PARKED:
            self._fleet_cooldown = FLEET_GATE_COOLDOWN
            if obs_reg is not None:
                obs_reg.inc("kernel.merge.decline.gate_conflict")
            return False

        slots = [core for core in runnable if core.next_index < core.limit]
        if len(slots) < FLEET_MIN_PARKED:  # unreachable: parked cores qualify
            return False

        n_slots = len(slots)
        cursors = [core.next_index for core in slots]
        clocks = [core.clock for core in slots]
        limits = [core.limit for core in slots]
        dirty = [False] * n_slots
        core_stats = self.core_stats
        gaps_col = self.gaps_col
        deltas_col = self.deltas_col
        touched = self._touched
        touched.clear()
        # repro-lint: disable=D103(wall time only feeds the bail heuristic's kernel-vs-scalar dispatch; both paths are bit-identical)
        fleet_start = time.perf_counter()
        retired, n_slow, _n_parked = self._resolve_slow_batch(
            [core.core_id for core in slots],
            [codes_col[core.core_id] for core in slots],
            [addrs_col[core.core_id] for core in slots],
            [gaps_col[core.core_id] for core in slots],
            [deltas_col[core.core_id] for core in slots],
            cursors,
            limits,
            clocks,
            [core_stats[core.core_id] for core in slots],
            dirty,
            max(FLEET_STREAK_BASE, 4 * n_slots),
            FLEET_MAX_RETIRE,
        )
        obs_timing = self._obs_timing
        if obs_timing is not None:
            obs_timing.observe(
                "resolve_slow_batch", obs_timing.clock() - fleet_start
            )
        if retired == 0:
            # Every slot parked (or sat beyond the bound) before mutating
            # anything: nothing moved, so fall back without any repair.
            self._fleet_cooldown = self._fleet_backoff
            self._fleet_backoff = min(self._fleet_backoff * 2, FLEET_COOLDOWN_MAX)
            if obs_reg is not None:
                obs_reg.inc("kernel.merge.decline.merge_empty")
            return False

        # Write back the slot cursors.  Slots whose private-cache membership
        # changed (fills, evictions, L2->L1 promotions) rebuild their tag
        # mirror; slots that only retired L1 hits keep mirror and window
        # (LRU refreshes don't change membership) and merely re-extract.
        for k, core in enumerate(slots):
            if cursors[k] == core.next_index and not dirty[k]:
                continue
            core.next_index = cursors[k]
            core.clock = clocks[k]
            core.class_valid = False
            if dirty[k]:
                core.stale = True
                core.mask = None

        # Mirror repair for everything else the merge's transactions moved:
        # the touched feed reports every (core, line) a slow transaction or
        # eviction changed — same coverage rules as _execute_one (dirty
        # slots are already stale, so they fall through to the cheap arm).
        dir_stale = self._dir_stale
        if obs_timing is not None:
            _obs_t0 = obs_timing.clock()
        if touched:
            cores = self.cores
            n_cores = self.n_cores
            core_states = self._core_states
            state_code_of = _STATE_CODE
            protocol = self.protocol
            for touched_id, touched_line in touched:
                dir_stale.add(touched_line)
                if touched_id >= n_cores:
                    continue
                other = cores[touched_id]
                if not other.stale:
                    new_code = state_code_of[
                        core_states[touched_id].get(touched_line)
                    ]
                    uop = UOP_NONE
                    if new_code == STATE_UPDATE and self._comm_local:
                        uop = protocol.batch_uop_code(touched_id, touched_line)
                    other.tags.update_line(touched_line, new_code, uop)
                    self._repair_mask_line(other, touched_line)
                else:
                    other.class_valid = False
                    other.mask = None
            touched.clear()

        if obs_timing is not None:
            obs_timing.observe("mask_repair", obs_timing.clock() - _obs_t0)

        self._slow_events += n_slow
        self._hits_batched += retired - n_slow
        if n_slow < FLEET_MIN_YIELD * n_slots:
            self._fleet_cooldown = self._fleet_backoff
            self._fleet_backoff = min(self._fleet_backoff * 2, FLEET_COOLDOWN_MAX)
            if obs_reg is not None:
                obs_reg.inc("kernel.merge.accept.unproductive")
                obs_reg.inc("kernel.merge.retired", retired)
        else:
            self._fleet_backoff = FLEET_COOLDOWN
            if obs_reg is not None:
                obs_reg.inc("kernel.merge.accept.productive")
                obs_reg.inc("kernel.merge.retired", retired)

        # Bail fairness: the bail heuristic's per-interval scalar estimate
        # was calibrated for the boundary path; a merge call can retire tens
        # of thousands of accesses in one interval, so judge it directly.
        # When the call measurably beat what the scalar loop would have
        # spent on the same work, vindicate the interval marks so the bail
        # comparison only ever judges the surrounding boundary work.
        # repro-lint: disable=D103(wall time only feeds the bail heuristic's kernel-vs-scalar dispatch; both paths are bit-identical)
        fleet_elapsed = time.perf_counter() - fleet_start
        scalar_estimate = _interpreter_speed_factor() * (
            (retired - n_slow) * BAIL_SCALAR_HIT_S + n_slow * BAIL_SCALAR_SLOW_S
        )
        if fleet_elapsed < scalar_estimate:
            self._bail_hits_mark = self._hits_batched
            self._bail_slow_mark = self._slow_events
            # repro-lint: disable=D103(documented bail heuristic; wall time only decides kernel-vs-scalar dispatch, both paths are bit-identical)
            self._bail_time_mark = time.perf_counter()
            self._bail_next = self._slow_events + BAIL_INTERVAL
        return True

    def _handoff(self) -> Tuple:
        """Package the current state so the scalar loop can resume exactly."""
        obs_reg = self._obs
        if obs_reg is not None:
            obs_reg.inc("kernel.stint.bail")
            obs_reg.inc("kernel.slow_events", self._slow_events)
            obs_reg.inc("kernel.hits_batched", self._hits_batched)
        cursor_state = [
            (core.clock, core.next_index, core.phase) for core in self.cores
        ]
        heap_entries = [
            (core.clock, core.core_id)
            for core in self.cores
            if not core.done and not core.at_barrier
        ]
        barrier_ids = [core.core_id for core in self.cores if core.at_barrier]
        self.protocol.touched_cores = None
        return cursor_state, self.core_stats, heap_entries, barrier_ids
