"""Memory access trace records consumed by the timing simulator.

Workload generators emit, per core, a sequence of :class:`MemoryAccess`
records.  Each record describes one memory instruction (load, store, atomic
read-modify-write, or a COUP commutative-update instruction) plus the amount
of non-memory work executed since the previous record, so the core timing
model can interleave compute and memory time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.core.commutative import CommutativeOp


class AccessType(enum.Enum):
    """Classes of memory instructions the simulator understands."""

    LOAD = "load"
    STORE = "store"
    #: Conventional atomic read-modify-write (e.g. lock xadd, CAS loop body).
    ATOMIC_RMW = "atomic_rmw"
    #: COUP commutative-update instruction (no register result).
    COMMUTATIVE_UPDATE = "commutative_update"
    #: Remote memory operation: the update is shipped to the home shared bank.
    REMOTE_UPDATE = "remote_update"

    @property
    def is_update(self) -> bool:
        """True for access types that modify memory."""
        return self is not AccessType.LOAD

    @property
    def is_commutative(self) -> bool:
        return self in (AccessType.COMMUTATIVE_UPDATE, AccessType.REMOTE_UPDATE)


class MemoryAccess:
    """One memory instruction in a core's trace.

    A hand-written slotted class rather than a dataclass: trace generation
    constructs millions of these, so construction must stay a single call
    with inline validation.

    Attributes
    ----------
    access_type:
        The instruction class.
    address:
        Byte address accessed.
    op:
        Commutative operation type, for commutative/remote updates.
    value:
        Operand value for updates and stores (used for functional checking).
    think_instructions:
        Non-memory instructions executed since the previous access; charged
        at the core's CPI before this access issues.
    size_bytes:
        Access width in bytes.
    """

    __slots__ = (
        "access_type",
        "address",
        "op",
        "value",
        "think_instructions",
        "size_bytes",
    )

    def __init__(
        self,
        access_type: AccessType,
        address: int,
        op: Optional[CommutativeOp] = None,
        value: object = None,
        think_instructions: int = 0,
        size_bytes: int = 8,
    ) -> None:
        if address < 0:
            raise ValueError("address must be non-negative")
        if think_instructions < 0:
            raise ValueError("think_instructions must be non-negative")
        if op is None and (
            access_type is AccessType.COMMUTATIVE_UPDATE
            or access_type is AccessType.REMOTE_UPDATE
        ):
            raise ValueError("commutative updates require an operation type")
        self.access_type = access_type
        self.address = address
        self.op = op
        self.value = value
        self.think_instructions = think_instructions
        self.size_bytes = size_bytes

    def __repr__(self) -> str:
        return (
            f"MemoryAccess(access_type={self.access_type!r}, address={self.address:#x}, "
            f"op={self.op!r}, value={self.value!r}, "
            f"think_instructions={self.think_instructions}, size_bytes={self.size_bytes})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MemoryAccess):
            return NotImplemented
        return (
            self.access_type is other.access_type
            and self.address == other.address
            and self.op is other.op
            and self.value == other.value
            and self.think_instructions == other.think_instructions
            and self.size_bytes == other.size_bytes
        )

    @classmethod
    def load(cls, address: int, *, think: int = 0, size: int = 8) -> "MemoryAccess":
        """A plain load."""
        return cls(AccessType.LOAD, address, think_instructions=think, size_bytes=size)

    @classmethod
    def store(cls, address: int, value=None, *, think: int = 0, size: int = 8) -> "MemoryAccess":
        """A plain store."""
        return cls(
            AccessType.STORE, address, value=value, think_instructions=think, size_bytes=size
        )

    @classmethod
    def atomic(
        cls,
        address: int,
        op: CommutativeOp = CommutativeOp.ADD_I64,
        value=1,
        *,
        think: int = 0,
    ) -> "MemoryAccess":
        """A conventional atomic read-modify-write (e.g. fetch-and-add)."""
        return cls(
            AccessType.ATOMIC_RMW,
            address,
            op=op,
            value=value,
            think_instructions=think,
            size_bytes=op.word_bytes,
        )

    @classmethod
    def commutative(
        cls,
        address: int,
        op: CommutativeOp,
        value,
        *,
        think: int = 0,
    ) -> "MemoryAccess":
        """A COUP commutative-update instruction."""
        return cls(
            AccessType.COMMUTATIVE_UPDATE,
            address,
            op=op,
            value=value,
            think_instructions=think,
            size_bytes=op.word_bytes,
        )

    @classmethod
    def remote_update(
        cls,
        address: int,
        op: CommutativeOp,
        value,
        *,
        think: int = 0,
    ) -> "MemoryAccess":
        """A remote memory operation sent to the home shared-cache bank."""
        return cls(
            AccessType.REMOTE_UPDATE,
            address,
            op=op,
            value=value,
            think_instructions=think,
            size_bytes=op.word_bytes,
        )


#: A per-core trace is simply an ordered list of accesses.
Trace = List[MemoryAccess]


@dataclass(slots=True)
class WorkloadTrace:
    """Traces for all cores plus workload metadata.

    ``per_core`` holds one trace per core (index == core id).  ``name`` and
    ``params`` describe the generating workload for reporting; ``phases``
    optionally mark barrier indices: ``phases[i]`` is a list giving, for each
    core, the number of accesses belonging to phases ``0..i``.  The simulator
    inserts a barrier between phases (all cores synchronise), which is how
    privatization reduction phases and iterative-algorithm supersteps are
    modelled.
    """

    name: str
    per_core: List[Trace]
    params: dict = field(default_factory=dict)
    phase_boundaries: Optional[List[List[int]]] = None

    @property
    def n_cores(self) -> int:
        return len(self.per_core)

    @property
    def total_accesses(self) -> int:
        return sum(len(trace) for trace in self.per_core)

    @property
    def total_instructions(self) -> int:
        """Total instructions (memory + think) across all cores."""
        return sum(
            len(trace) + sum(access.think_instructions for access in trace)
            for trace in self.per_core
        )

    def commutative_fraction(self) -> float:
        """Fraction of accesses that are commutative/atomic updates.

        The paper reports commutative-update instructions as a small fraction
        of all executed instructions (Sec. 5.2); this helper reproduces that
        statistic for Table 2 style reporting.
        """
        updates = sum(
            1
            for trace in self.per_core
            for access in trace
            if access.access_type in (AccessType.COMMUTATIVE_UPDATE, AccessType.ATOMIC_RMW, AccessType.REMOTE_UPDATE)
        )
        total = self.total_instructions
        return updates / total if total else 0.0

    def validate(self) -> None:
        """Sanity-check the phase structure (used by workload tests)."""
        if self.phase_boundaries is None:
            return
        for boundaries in self.phase_boundaries:
            if len(boundaries) != self.n_cores:
                raise ValueError("each phase boundary must list one index per core")
            for core_id, bound in enumerate(boundaries):
                if not 0 <= bound <= len(self.per_core[core_id]):
                    raise ValueError(
                        f"phase boundary {bound} out of range for core {core_id}"
                    )


def merge_traces(traces: Iterable[Trace]) -> Trace:
    """Concatenate several traces into one (used to build single-core runs)."""
    merged: Trace = []
    for trace in traces:
        merged.extend(trace)
    return merged


#: Names re-exported lazily from :mod:`repro.sim.columnar` so both trace
#: representations share one import home without a circular import.
_COLUMNAR_NAMES = {
    "ACCESS_DTYPE",
    "ColumnarTrace",
    "TraceCodecError",
    "as_columnar",
    "as_workload",
}


def __getattr__(name: str):
    if name in _COLUMNAR_NAMES:
        from repro.sim import columnar

        return getattr(columnar, name)
    raise AttributeError(f"module 'repro.sim.access' has no attribute {name!r}")
