"""System configuration dataclasses and the Table 1 machine presets.

The paper evaluates single- and multi-socket systems with up to 128 cores and
a four-level cache hierarchy (Fig. 9 / Table 1): per-core L1s and L2s, a
banked shared L3 with an in-cache directory per processor chip, and one or
more L4/global-directory chips connected in a dancehall topology.  This module
captures that configuration as plain dataclasses so experiments, tests, and
benchmarks all build the same machine.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and access latency of one cache level."""

    size_bytes: int
    ways: int
    latency: int
    line_bytes: int = 64
    banks: int = 1
    inclusive: bool = True

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return max(1, self.num_lines // self.ways)

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("cache size must be positive")
        if self.ways <= 0:
            raise ValueError("associativity must be positive")
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line size must be a positive power of two")
        if self.size_bytes % (self.line_bytes * self.ways):
            raise ValueError("cache size must be a multiple of ways * line size")


#: Off-chip topologies the interconnect subsystem implements
#: (:mod:`repro.interconnect.topology` keeps its registry in sync with this).
TOPOLOGY_NAMES = ("dancehall", "crossbar", "mesh", "torus")


@dataclass(frozen=True)
class TopologyConfig:
    """Off-chip topology selection and the contention model's knobs.

    The defaults — the Fig. 9 dancehall with contention disabled — reproduce
    the original fixed-latency interconnect bit-for-bit; every golden
    fingerprint is pinned against this configuration.  Enabling ``contention``
    activates the epoch-based queueing model of
    :mod:`repro.interconnect.contention`: per-link and per-directory-bank
    occupancy is accumulated per epoch and an M/D/1-style waiting-time
    surcharge is folded into every off-chip transfer's latency.
    """

    #: One of :data:`TOPOLOGY_NAMES`.
    name: str = "dancehall"
    #: Whether the epoch queueing model charges contention surcharges.
    contention: bool = False
    #: Peak bytes per cycle one directed off-chip link can move.
    link_bandwidth_bytes_per_cycle: float = 16.0
    #: Epoch length (cycles) over which link/bank occupancy is accumulated;
    #: the previous epoch's utilization drives the current surcharge.
    epoch_cycles: int = 2048
    #: Directory-bank service time per request (cycles) for bank queueing.
    bank_service_cycles: float = 4.0
    #: Utilization clamp: queueing delay diverges as utilization approaches
    #: 1, so observed utilization is capped here before the M/D/1 formula.
    max_utilization: float = 0.98

    def __post_init__(self) -> None:
        if self.name not in TOPOLOGY_NAMES:
            raise ValueError(
                f"unknown topology {self.name!r}; expected one of {TOPOLOGY_NAMES}"
            )
        if self.link_bandwidth_bytes_per_cycle <= 0:
            raise ValueError("link bandwidth must be positive")
        if self.epoch_cycles <= 0:
            raise ValueError("epoch_cycles must be positive")
        if self.bank_service_cycles < 0:
            raise ValueError("bank_service_cycles must be non-negative")
        if not 0.0 < self.max_utilization < 1.0:
            raise ValueError("max_utilization must be in (0, 1)")


@dataclass(frozen=True)
class NetworkConfig:
    """On-chip and off-chip interconnect latencies and message sizes."""

    #: Point-to-point link latency between a processor chip and an L4 chip.
    offchip_link_latency: int = 40
    #: Latency of the on-chip network between L2s and L3 banks.
    onchip_latency: int = 3
    #: Size of an address/control message in bytes (request, inval, ack).
    control_bytes: int = 8
    #: Size of a full data message in bytes (line + header).
    data_bytes: int = 72
    #: Off-chip topology and contention model (dancehall, no contention by
    #: default — the original fixed-latency interconnect).
    topology: TopologyConfig = field(default_factory=TopologyConfig)


@dataclass(frozen=True)
class MemoryConfig:
    """Main-memory (DDR3-1600-like) timing and bandwidth."""

    latency: int = 120
    channels_per_l4_chip: int = 4
    channel_bandwidth_bytes_per_cycle: float = 6.4


@dataclass(frozen=True)
class ReductionUnitConfig:
    """Reduction ALU at each shared cache bank (Sec. 5.1).

    The default is the paper's 2-stage pipelined 256-bit ALU: one full 64-byte
    line every 2 cycles, 3-cycle latency.  The sensitivity study (Sec. 5.5)
    swaps in an unpipelined 64-bit ALU: one line per 16 cycles.
    """

    lane_bits: int = 256
    pipelined: bool = True
    latency_per_line: int = 3
    cycles_per_line: int = 2

    @staticmethod
    def fast() -> "ReductionUnitConfig":
        """The default 256-bit pipelined reduction unit."""
        return ReductionUnitConfig()

    @staticmethod
    def slow() -> "ReductionUnitConfig":
        """The simple 64-bit unpipelined unit from the sensitivity study."""
        return ReductionUnitConfig(
            lane_bits=64, pipelined=False, latency_per_line=16, cycles_per_line=16
        )


@dataclass(frozen=True)
class CoreConfig:
    """Simplified core timing model.

    The paper simulates Nehalem-like OOO cores; our trace-driven model charges
    a fixed number of cycles per non-memory instruction and a fixed µop
    overhead for atomic read-modify-write sequences (load-linked, execute,
    store-conditional, fence) and commutative-update instructions.
    """

    frequency_ghz: float = 2.4
    cycles_per_instruction: float = 0.5
    atomic_uop_overhead: int = 12
    commutative_uop_overhead: int = 4
    load_l1_latency: int = 4


@dataclass(frozen=True)
class SystemConfig:
    """Full machine description assembled from the component configs."""

    n_cores: int
    cores_per_chip: int = 16
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=32 * 1024, ways=8, latency=4)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=256 * 1024, ways=8, latency=7)
    )
    l3: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=32 * 1024 * 1024, ways=16, latency=27, banks=8
        )
    )
    l4: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=128 * 1024 * 1024, ways=16, latency=35, banks=8
        )
    )
    network: NetworkConfig = field(default_factory=NetworkConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    reduction_unit: ReductionUnitConfig = field(default_factory=ReductionUnitConfig)
    core: CoreConfig = field(default_factory=CoreConfig)
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.n_cores <= 0:
            raise ValueError("n_cores must be positive")
        if self.cores_per_chip <= 0:
            raise ValueError("cores_per_chip must be positive")

    @property
    def n_chips(self) -> int:
        """Number of processor chips (16 cores per chip, at least one)."""
        return max(1, math.ceil(self.n_cores / self.cores_per_chip))

    @property
    def n_l4_chips(self) -> int:
        """The dancehall topology pairs each processor chip with one L4 chip."""
        return self.n_chips

    @property
    def n_sockets(self) -> int:
        """Alias for :attr:`n_chips`, used by socket-level privatization."""
        return self.n_chips

    def chip_of_core(self, core_id: int) -> int:
        """Processor chip hosting ``core_id``."""
        if not 0 <= core_id < self.n_cores:
            raise ValueError(f"core id {core_id} out of range")
        return core_id // self.cores_per_chip

    def cores_on_chip(self, chip_id: int) -> range:
        """Range of core ids on ``chip_id``."""
        start = chip_id * self.cores_per_chip
        stop = min(start + self.cores_per_chip, self.n_cores)
        return range(start, stop)

    def l4_home_chip(self, line_addr: int) -> int:
        """L4/global-directory chip that is home to a line (address-interleaved)."""
        return line_addr % self.n_l4_chips

    def l3_home_bank(self, line_addr: int) -> int:
        """L3 bank within a chip that is home to a line."""
        return line_addr % self.l3.banks

    def line_address(self, byte_addr: int) -> int:
        """Cache-line address of a byte address."""
        return byte_addr // self.line_bytes

    def with_cores(self, n_cores: int) -> "SystemConfig":
        """A copy of this configuration with a different core count."""
        return dataclasses.replace(self, n_cores=n_cores)

    def with_reduction_unit(self, unit: ReductionUnitConfig) -> "SystemConfig":
        """A copy of this configuration with a different reduction unit."""
        return dataclasses.replace(self, reduction_unit=unit)

    def with_topology(self, topology: TopologyConfig) -> "SystemConfig":
        """A copy of this configuration with a different off-chip topology."""
        return dataclasses.replace(
            self, network=dataclasses.replace(self.network, topology=topology)
        )


def table1_config(
    n_cores: int = 128,
    reduction_unit: Optional[ReductionUnitConfig] = None,
    topology: Optional[TopologyConfig] = None,
) -> SystemConfig:
    """The paper's Table 1 machine at a given core count.

    The paper scales the number of processor and L4 chips with the core count
    (1-core runs use one of each, 32-core runs use two, and so on); that
    scaling falls out of :attr:`SystemConfig.n_chips`.
    """
    config = SystemConfig(n_cores=n_cores)
    if reduction_unit is not None:
        config = config.with_reduction_unit(reduction_unit)
    if topology is not None:
        config = config.with_topology(topology)
    return config


def small_test_config(n_cores: int = 4) -> SystemConfig:
    """A deliberately tiny machine for fast unit tests.

    Caches are shrunk so that capacity evictions actually occur in small
    traces, exercising the partial-reduction and writeback paths.
    """
    return SystemConfig(
        n_cores=n_cores,
        cores_per_chip=4,
        l1d=CacheConfig(size_bytes=1024, ways=2, latency=4),
        l2=CacheConfig(size_bytes=4096, ways=4, latency=7),
        l3=CacheConfig(size_bytes=16 * 1024, ways=4, latency=27, banks=2),
        l4=CacheConfig(size_bytes=64 * 1024, ways=4, latency=35, banks=2),
    )
