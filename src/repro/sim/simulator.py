"""Multicore trace-driven timing simulator.

The simulator interleaves per-core access traces in global-time order: the
core with the smallest local clock issues its next access, the protocol engine
resolves it (returning critical-path latency and recording traffic), and the
core's clock advances by the compute time plus memory latency.  Optional phase
barriers synchronise all cores, which is how reduction phases of privatized
workloads and supersteps of iterative algorithms are modelled.

This per-access atomic resolution plus per-line serialization at the directory
captures the effects COUP targets — line ping-pong, invalidation storms, and
serialization of contended atomics — without modelling transient protocol
races (those are verified separately in :mod:`repro.verification`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Type

from repro.core.mesi import MesiProtocol
from repro.core.meusi import MeusiProtocol
from repro.core.protocol import CoherenceProtocol
from repro.core.rmo import RmoProtocol
from repro.sim.access import AccessType, MemoryAccess, WorkloadTrace
from repro.sim.config import SystemConfig
from repro.sim.core_model import CoreTimingModel
from repro.sim.stats import CoreStats, SimulationResult


#: Registry of protocol engines selectable by name.
PROTOCOLS: Dict[str, Type[CoherenceProtocol]] = {
    "MESI": MesiProtocol,
    "COUP": MeusiProtocol,
    "MEUSI": MeusiProtocol,
    "RMO": RmoProtocol,
}


def make_protocol(
    name: str, config: SystemConfig, track_values: bool = True
) -> CoherenceProtocol:
    """Instantiate a protocol engine by name (``MESI``, ``COUP``, ``RMO``)."""
    try:
        protocol_cls = PROTOCOLS[name.upper()]
    except KeyError as exc:
        raise ValueError(
            f"unknown protocol {name!r}; expected one of {sorted(PROTOCOLS)}"
        ) from exc
    return protocol_cls(config, track_values=track_values)


@dataclass
class _CoreCursor:
    """Per-core simulation cursor."""

    core_id: int
    clock: float = 0.0
    next_index: int = 0
    phase: int = 0
    waiting_at_barrier: bool = False


class MulticoreSimulator:
    """Runs one workload trace under one protocol on one machine config."""

    def __init__(
        self,
        config: SystemConfig,
        protocol: CoherenceProtocol,
        *,
        track_values: bool = True,
    ) -> None:
        self.config = config
        self.protocol = protocol
        self.core_model = CoreTimingModel(config.core)
        self.track_values = track_values

    def run(self, workload: WorkloadTrace) -> SimulationResult:
        """Simulate the workload to completion and return statistics."""
        if workload.n_cores > self.config.n_cores:
            raise ValueError(
                f"workload uses {workload.n_cores} cores but the machine has "
                f"{self.config.n_cores}"
            )
        workload.validate()

        n_cores = workload.n_cores
        cursors = [_CoreCursor(core_id=i) for i in range(n_cores)]
        core_stats = [CoreStats(core_id=i) for i in range(n_cores)]
        phase_boundaries = workload.phase_boundaries or []
        n_phases = len(phase_boundaries)

        # Min-heap of (clock, core_id) for cores that still have work to do.
        heap: List[tuple] = [(0.0, i) for i in range(n_cores)]
        heapq.heapify(heap)
        barrier_waiters: List[int] = []

        while heap or barrier_waiters:
            if not heap:
                # Every runnable core reached the current barrier: release it.
                self._release_barrier(cursors, barrier_waiters, heap)
                continue

            clock, core_id = heapq.heappop(heap)
            cursor = cursors[core_id]
            cursor.clock = clock
            trace = workload.per_core[core_id]

            if cursor.next_index >= len(trace):
                # This core is done; it still participates in barriers so that
                # phases end only when every core has arrived.
                if cursor.phase < n_phases:
                    barrier_waiters.append(core_id)
                continue

            # Check whether the core has reached its next phase boundary.
            if cursor.phase < n_phases:
                boundary = phase_boundaries[cursor.phase][core_id]
                if cursor.next_index >= boundary:
                    barrier_waiters.append(core_id)
                    continue

            access = trace[cursor.next_index]
            cursor.next_index += 1

            think = self.core_model.think_cycles(access)
            issue_time = cursor.clock + think
            outcome = self.protocol.access(core_id, access, issue_time)
            overhead = self.core_model.issue_overhead(access)
            latency = outcome.total_latency
            cursor.clock = issue_time + overhead + latency

            stats = core_stats[core_id]
            stats.accesses += 1
            stats.compute_cycles += think + overhead
            stats.memory_cycles += latency
            stats.latency.add(outcome.latency)
            if outcome.private_hit:
                stats.l1_hits += 1
            if access.access_type is AccessType.LOAD:
                stats.loads += 1
            elif access.access_type is AccessType.STORE:
                stats.stores += 1
            elif access.access_type is AccessType.ATOMIC_RMW:
                stats.atomics += 1
            elif access.access_type is AccessType.COMMUTATIVE_UPDATE:
                stats.commutative_updates += 1
            elif access.access_type is AccessType.REMOTE_UPDATE:
                stats.remote_updates += 1

            heapq.heappush(heap, (cursor.clock, core_id))

        self.protocol.finalize()

        for cursor, stats in zip(cursors, core_stats):
            stats.finish_time = cursor.clock

        run_cycles = max((stats.finish_time for stats in core_stats), default=0.0)
        traffic = self.protocol.interconnect.traffic
        meusi_stats = getattr(self.protocol, "reduction_statistics", None)
        reductions = self.protocol.stat_full_reductions
        partials = self.protocol.stat_partial_reductions

        return SimulationResult(
            protocol=self.protocol.name,
            workload=workload.name,
            n_cores=n_cores,
            core_stats=core_stats,
            run_cycles=run_cycles,
            offchip_bytes=traffic.off_chip_bytes,
            onchip_bytes=traffic.on_chip_bytes,
            reductions=reductions,
            partial_reductions=partials,
            invalidations=self.protocol.stat_invalidations,
            downgrades=self.protocol.stat_downgrades,
            final_values=dict(self.protocol.memory_image) if self.track_values else None,
            params=dict(workload.params),
        )

    @staticmethod
    def _release_barrier(
        cursors: Sequence[_CoreCursor], barrier_waiters: List[int], heap: List[tuple]
    ) -> None:
        """Advance every waiting core past the barrier at the barrier time."""
        if not barrier_waiters:
            return
        release_time = max(cursors[core_id].clock for core_id in barrier_waiters)
        for core_id in barrier_waiters:
            cursor = cursors[core_id]
            cursor.clock = release_time
            cursor.phase += 1
            heapq.heappush(heap, (cursor.clock, core_id))
        barrier_waiters.clear()


def simulate(
    workload: WorkloadTrace,
    config: SystemConfig,
    protocol: str = "MESI",
    *,
    track_values: bool = True,
) -> SimulationResult:
    """Convenience wrapper: build the protocol engine and run the workload."""
    engine = make_protocol(protocol, config, track_values=track_values)
    simulator = MulticoreSimulator(config, engine, track_values=track_values)
    return simulator.run(workload)


def compare_protocols(
    workload_factory: Callable[[int], WorkloadTrace],
    config: SystemConfig,
    protocols: Sequence[str] = ("MESI", "COUP"),
    *,
    track_values: bool = False,
) -> Dict[str, SimulationResult]:
    """Run the same workload (regenerated per protocol) under several protocols.

    The factory receives the core count so workloads can be regenerated with
    identical parameters; regenerating (rather than sharing) the trace keeps
    results independent even if a workload uses its own RNG lazily.
    """
    results: Dict[str, SimulationResult] = {}
    for protocol in protocols:
        workload = workload_factory(config.n_cores)
        results[protocol] = simulate(
            workload, config, protocol, track_values=track_values
        )
    return results
