"""Multicore trace-driven timing simulator.

The simulator interleaves per-core access traces in global-time order: the
core with the smallest local clock issues its next access, the protocol engine
resolves it (returning critical-path latency and recording traffic), and the
core's clock advances by the compute time plus memory latency.  Optional phase
barriers synchronise all cores, which is how reduction phases of privatized
workloads and supersteps of iterative algorithms are modelled.

This per-access atomic resolution plus per-line serialization at the directory
captures the effects COUP targets — line ping-pong, invalidation storms, and
serialization of contended atomics — without modelling transient protocol
races (those are verified separately in :mod:`repro.verification`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Type

from repro import obs as _obs
from repro.core.mesi import MesiProtocol
from repro.core.meusi import MeusiProtocol
from repro.core.protocol import CoherenceProtocol
from repro.core.rmo import RmoProtocol
from repro.core.states import StableState
from repro.sim.access import AccessType, MemoryAccess, WorkloadTrace
from repro.sim.columnar import (
    CODE_ACCESS_TYPE,
    CODE_OP,
    CODE_SIZE,
    COMM_MIN_CODE,
    COMMUTATIVE_MIN_CODE,
    REMOTE_MIN_CODE,
    UPDATE_MIN_CODE,
    ColumnarTrace,
    decode_values,
)
from repro.sim.config import SystemConfig
from repro.sim.core_model import CoreTimingModel
from repro.sim.stats import CoreStats, SimulationResult


#: Consecutive private hits (across all cores) after which the scalar
#: columnar loop hands control back to the batched kernel: a long global
#: streak means every core is in the kernel's hit-run regime.
REENTER_STREAK = 512

#: Upper bound on batched-kernel stints per run, so a workload oscillating
#: near the batch/scalar break-even settles in the scalar loop.
MAX_KERNEL_STINTS = 3


#: Registry of protocol engines selectable by name.
PROTOCOLS: Dict[str, Type[CoherenceProtocol]] = {
    "MESI": MesiProtocol,
    "COUP": MeusiProtocol,
    "MEUSI": MeusiProtocol,
    "RMO": RmoProtocol,
}


def make_protocol(
    name: str, config: SystemConfig, track_values: bool = True
) -> CoherenceProtocol:
    """Instantiate a protocol engine by name (``MESI``, ``COUP``, ``RMO``)."""
    try:
        protocol_cls = PROTOCOLS[name.upper()]
    except KeyError as exc:
        raise ValueError(
            f"unknown protocol {name!r}; expected one of {sorted(PROTOCOLS)}"
        ) from exc
    return protocol_cls(config, track_values=track_values)


@dataclass(slots=True)
class _CoreCursor:
    """Per-core simulation cursor."""

    core_id: int
    clock: float = 0.0
    next_index: int = 0
    phase: int = 0
    waiting_at_barrier: bool = False


class MulticoreSimulator:
    """Runs one workload trace under one protocol on one machine config."""

    __slots__ = ("config", "protocol", "core_model", "track_values")

    def __init__(
        self,
        config: SystemConfig,
        protocol: CoherenceProtocol,
        *,
        track_values: bool = True,
    ) -> None:
        self.config = config
        self.protocol = protocol
        self.core_model = CoreTimingModel(config.core)
        self.track_values = track_values

    def run(self, workload) -> SimulationResult:
        """Simulate the workload to completion and return statistics.

        Accepts either trace representation: the object form
        (:class:`WorkloadTrace`) or the packed columnar form
        (:class:`~repro.sim.columnar.ColumnarTrace`), which is simulated by
        :meth:`_run_columnar` without materializing per-access objects.  The
        two paths are pinned bit-identical by the golden-equivalence suite.
        """
        if isinstance(workload, ColumnarTrace):
            return self._run_columnar(workload)
        if workload.n_cores > self.config.n_cores:
            raise ValueError(
                f"workload uses {workload.n_cores} cores but the machine has "
                f"{self.config.n_cores}"
            )
        workload.validate()

        n_cores = workload.n_cores
        cursors = [_CoreCursor(core_id=i) for i in range(n_cores)]
        core_stats = [CoreStats(core_id=i) for i in range(n_cores)]
        phase_boundaries = workload.phase_boundaries or []
        n_phases = len(phase_boundaries)

        # -- hot-loop constants, hoisted out of the per-access path -----------
        heappush = heapq.heappush
        heappop = heapq.heappop
        protocol = self.protocol
        traces = workload.per_core
        trace_lens = [len(trace) for trace in traces]
        cpi = self.core_model.cycles_per_instruction
        atomic_overhead = self.core_model.atomic_overhead
        commutative_overhead = self.core_model.commutative_overhead
        # Private-hit latencies, as the same float sums the transaction path
        # would produce (L1, and L1+L2) so results stay bit-identical.
        l1_latency = self.config.l1d.latency
        l2_latency = self.config.l2.latency
        l1_hit_total = l1_latency + 0.0
        l2_hit_total = l1_latency + l2_latency + 0.0
        load_t = AccessType.LOAD
        store_t = AccessType.STORE
        atomic_t = AccessType.ATOMIC_RMW
        commutative_t = AccessType.COMMUTATIVE_UPDATE
        # (REMOTE_UPDATE is the dispatch's final else: no constant needed.)

        # Inline private-hit fast path (see CoherenceProtocol.resolve_slow):
        # for the MESI-family engines the loop resolves hits against the
        # protocol's own tables without a single protocol call, and everything
        # else drops into resolve_slow.  Engines without fast-path support
        # fall back to access_hot per access.
        inline = protocol.SUPPORTS_INLINE_FAST_PATH
        if inline:
            resolve_slow = protocol.resolve_slow
            core_states = protocol.core_states
            l1_caches = protocol._l1_caches
            l2_caches = protocol._l2_caches
            line_shift = protocol._line_shift
            track_values = protocol.track_values
            memory_image = protocol.memory_image
            directory_entries = protocol.directory._entries
            comm_local = protocol.HOT_COMMUTATIVE == "local"
            comm_never = protocol.HOT_COMMUTATIVE == "never"
            exclusive_s = StableState.EXCLUSIVE
            modified_s = StableState.MODIFIED
            update_s = StableState.UPDATE
        else:
            access_hot = protocol.access_hot

        # Min-heap of (clock, core_id) for cores that still have work to do.
        # The core id is an explicit part of every heap entry so that cores
        # whose clocks are exactly equal are always popped in ascending
        # core-id order — the interleaving is fully deterministic, and the
        # object and columnar simulation paths can never diverge on ties
        # (pinned by tests/sim/test_simulator.py::TestCoreSelectionTieBreak).
        heap: List[tuple] = [(0.0, i) for i in range(n_cores)]
        heapq.heapify(heap)
        barrier_waiters: List[int] = []

        while heap or barrier_waiters:
            if not heap:
                # Every runnable core reached the current barrier: release it.
                self._release_barrier(cursors, barrier_waiters, heap)
                continue

            clock, core_id = heappop(heap)
            cursor = cursors[core_id]
            index = cursor.next_index

            if index >= trace_lens[core_id]:
                # This core is done; it still participates in barriers so that
                # phases end only when every core has arrived.  The clock is
                # normally carried in the heap tuples; record it on the
                # cursor only when the core leaves the heap.
                cursor.clock = clock
                if cursor.phase < n_phases:
                    barrier_waiters.append(core_id)
                continue

            # Check whether the core has reached its next phase boundary.
            if cursor.phase < n_phases:
                if index >= phase_boundaries[cursor.phase][core_id]:
                    cursor.clock = clock
                    barrier_waiters.append(core_id)
                    continue

            access = traces[core_id][index]
            cursor.next_index = index + 1
            stats = core_stats[core_id]

            # One fused dispatch on the access type: issue overhead and the
            # per-type instruction counters.
            access_type = access.access_type
            is_comm = False
            if access_type is load_t:
                overhead = 0.0
                stats.loads += 1
            elif access_type is store_t:
                overhead = 0.0
                stats.stores += 1
            elif access_type is atomic_t:
                overhead = atomic_overhead
                stats.atomics += 1
            elif access_type is commutative_t:
                overhead = commutative_overhead
                stats.commutative_updates += 1
                is_comm = True
            else:
                overhead = commutative_overhead
                stats.remote_updates += 1
                is_comm = True

            think = access.think_instructions * cpi
            issue_time = clock + think

            hit_level = 0
            result = None
            if inline:
                address = access.address
                line_addr = address >> line_shift
                states = core_states[core_id]
                state = states.get(line_addr)
                level = None
                # Probe the private caches only when a hit is possible under
                # this engine's rules; any access the original transaction
                # path would probe but this loop does not is probed inside
                # resolve_slow instead, so the lookup happens exactly once.
                if state is not None and (
                    (not comm_never) if is_comm else (state is not update_s)
                ):
                    # Same side effects as CacheHierarchy.private_lookup_level
                    # and CoherenceProtocol._private_level — the probe is
                    # intentionally hand-duplicated in those three places for
                    # speed; change all three together (the golden-equivalence
                    # suite catches divergence).
                    l1 = l1_caches[core_id]
                    cache_set = l1._sets.get(line_addr % l1._num_sets)
                    info = cache_set.get(line_addr) if cache_set is not None else None
                    if info is not None:
                        l1.hits += 1
                        l1._tick = tick = l1._tick + 1
                        info.last_use = tick
                        level = 1
                    else:
                        l1.misses += 1
                        l2 = l2_caches[core_id]
                        cache_set = l2._sets.get(line_addr % l2._num_sets)
                        info = cache_set.get(line_addr) if cache_set is not None else None
                        if info is not None:
                            l2.hits += 1
                            l2._tick = tick = l2._tick + 1
                            info.last_use = tick
                            l1.insert(line_addr)
                            level = 2
                        else:
                            l2.misses += 1
                            level = 0
                    if level:
                        if access_type is load_t:
                            if state is not update_s:  # S/E/M satisfy loads
                                hit_level = level
                        elif state is modified_s or state is exclusive_s:
                            # Store, atomic, or (folded/local) commutative
                            # update against our own M/E copy.
                            states[line_addr] = modified_s
                            if track_values:
                                if access_type is store_t:
                                    if access.value is not None:
                                        memory_image[address] = access.value
                                else:
                                    protocol._functional_update(access)
                            if is_comm and comm_local:
                                protocol.stat_local_updates += 1
                            hit_level = level
                        elif state is update_s and is_comm and comm_local:
                            # U-state line: buffer same-type updates locally.
                            entry = directory_entries.get(line_addr)
                            op = access.op
                            if op is not None and entry is not None and entry.op is op:
                                if track_values:
                                    protocol._apply_local_update(core_id, access)
                                protocol.stat_local_updates += 1
                                hit_level = level
                if not hit_level:
                    result = resolve_slow(
                        core_id, access, line_addr, state, level, issue_time
                    )
            else:
                result = access_hot(core_id, access, issue_time)
                if result.__class__ is int:
                    hit_level = result
                    result = None

            if hit_level:
                # Private hit: charge the fixed L1/L2 latency without having
                # built an AccessOutcome.  The component adds mirror what
                # LatencyBreakdown.add would have accumulated.
                latency_record = stats.latency
                latency_record.l1 += l1_latency
                if hit_level == 1:
                    latency = l1_hit_total
                else:
                    latency_record.l2 += l2_latency
                    latency = l2_hit_total
                stats.l1_hits += 1
            else:
                latency = result.total_latency
                stats.latency.add(result.latency)
                if result.private_hit:
                    stats.l1_hits += 1

            stats.accesses += 1
            stats.compute_cycles += think + overhead
            stats.memory_cycles += latency

            heappush(heap, (issue_time + overhead + latency, core_id))

        return self._finish(workload, cursors, core_stats)

    def _run_columnar(self, workload: ColumnarTrace) -> SimulationResult:
        """Simulate a columnar trace via the batched kernel or the scalar loop.

        The three-tier hot path: the batched kernel (:mod:`repro.sim.kernel`)
        advances whole hit-runs with vectorized scans, dropping into the
        inline per-access probe at run boundaries, which in turn drops into
        :meth:`CoherenceProtocol.resolve_slow` for protocol action.  The
        kernel is used when the engine opts in (``SUPPORTS_BATCH_KERNEL``)
        and ``REPRO_SIM_KERNEL`` allows it; in ``auto`` mode it bails out to
        the scalar loop mid-run on workloads whose hit-runs are too short to
        batch profitably.  All paths are bit-identical (golden suite plus
        the batch-boundary grids in tests/sim/test_batch_kernel.py).
        """
        if workload.n_cores > self.config.n_cores:
            raise ValueError(
                f"workload uses {workload.n_cores} cores but the machine has "
                f"{self.config.n_cores}"
            )
        workload.validate()

        from repro.sim.kernel import BatchedKernel, kernel_mode

        mode = kernel_mode()
        if (
            mode == "scalar"
            or not self.protocol.SUPPORTS_BATCH_KERNEL
            or not self.protocol.SUPPORTS_INLINE_FAST_PATH
        ):
            return self._run_columnar_scalar(workload)

        # The two loops alternate on the same exact state: the kernel bails
        # to the scalar loop when a stretch of the workload defeats both of
        # its batching tiers (hit-run windows and group retirement of
        # independent slow accesses — conflict-dense stretches like cross-op
        # reductions defeat the merge's entry gate), and the scalar loop
        # hands back when it observes a long run of consecutive private hits
        # (the kernel's regime).  Stints are capped so a workload
        # oscillating near break-even settles in the scalar loop.
        force = mode == "batch"
        state = None
        scratch: dict = {}
        stints = 1
        while True:
            kernel = BatchedKernel(self, workload, force=force, resume=state)
            state = kernel.run()
            if state is None:
                self.protocol.touched_cores = None
                cursors = [
                    _CoreCursor(
                        core_id=core.core_id,
                        clock=core.clock,
                        next_index=core.next_index,
                        phase=core.phase,
                    )
                    for core in kernel.cores
                ]
                return self._finish(workload, cursors, kernel.core_stats)
            obs_reg = _obs.get_registry()
            if obs_reg is not None:
                obs_reg.inc("sim.stint.scalar")
            outcome = self._run_columnar_scalar(
                workload,
                resume=state,
                scratch=scratch,
                reenter=stints < MAX_KERNEL_STINTS,
            )
            if isinstance(outcome, SimulationResult):
                return outcome
            state = outcome
            stints += 1

    def _run_columnar_scalar(
        self, workload: ColumnarTrace, resume=None, scratch=None, reenter=False
    ):
        """Columnar twin of :meth:`run`: cursor-indexed raw columns.

        The control flow, arithmetic, and protocol interactions are kept
        line-for-line equivalent to the object loop — only the per-access
        representation differs.  ``MemoryAccess`` objects are materialized
        lazily, and only for the protocol calls whose signatures take one
        (``resolve_slow``/``access_hot`` and the functional-update helpers);
        every private hit resolves against raw ints and floats.  Any change
        here must be mirrored in :meth:`run`, in the batched kernel's
        boundary path (``BatchedKernel._execute_one``), and in the engines'
        group-retirement merge (``resolve_slow_batch``, which replays this
        loop's probe + ``resolve_slow`` sequence inline per slot); the
        golden equivalence suite pins all paths bit-identical.

        ``resume`` is a handoff from a bailed-out batched-kernel run:
        ``(per-core (clock, next_index, phase), core_stats, heap entries,
        barrier-waiter ids)``.  The kernel maintains exactly this loop's
        state, so resuming mid-run continues the identical simulation.  With
        ``reenter``, a run of :data:`REENTER_STREAK` consecutive private
        hits returns the same handoff shape instead of a result, so
        :meth:`_run_columnar` can hand the hot stretch back to the kernel;
        ``scratch`` caches the decoded columns across such alternations.
        """
        n_cores = workload.n_cores
        if resume is None:
            cursors = [_CoreCursor(core_id=i) for i in range(n_cores)]
            core_stats = [CoreStats(core_id=i) for i in range(n_cores)]
        else:
            cursor_state, core_stats, _, _ = resume
            cursors = [
                _CoreCursor(core_id=i, clock=clock, next_index=next_index, phase=phase)
                for i, (clock, next_index, phase) in enumerate(cursor_state)
            ]
        phase_boundaries = workload.phase_boundaries or []
        n_phases = len(phase_boundaries)

        # -- per-core columns, decoded once into flat Python lists ------------
        # ``tolist`` converts whole columns in C: addresses become plain ints
        # (exact dict keys for the protocol tables), compute gaps stay floats
        # (``gap * cpi`` is bit-identical to ``int_think * cpi`` because every
        # gap is an exact small integer), and operand values are decoded by
        # kind in one vectorized pass per core.
        columns = scratch.get("columns") if scratch is not None else None
        if columns is None:
            columns = (
                [column["type_code"].tolist() for column in workload.columns],
                [column["address"].tolist() for column in workload.columns],
                [column["compute_gap"].tolist() for column in workload.columns],
                [decode_values(column) for column in workload.columns],
            )
            if scratch is not None:
                scratch["columns"] = columns
        codes_pc, addrs_pc, gaps_pc, values_pc = columns
        trace_lens = [len(codes) for codes in codes_pc]

        # -- hot-loop constants, hoisted out of the per-access path -----------
        heappush = heapq.heappush
        heappop = heapq.heappop
        protocol = self.protocol
        cpi = self.core_model.cycles_per_instruction
        atomic_overhead = self.core_model.atomic_overhead
        commutative_overhead = self.core_model.commutative_overhead
        l1_latency = self.config.l1d.latency
        l2_latency = self.config.l2.latency
        l1_hit_total = l1_latency + 0.0
        l2_hit_total = l1_latency + l2_latency + 0.0
        # type_code classification bounds (see repro.sim.columnar): loads,
        # then stores, then atomic/commutative/remote updates in ascending
        # code ranges.  Hoisted to locals for the hot loop.
        store_min = UPDATE_MIN_CODE
        atomic_min = COMM_MIN_CODE
        commutative_min = COMMUTATIVE_MIN_CODE
        remote_min = REMOTE_MIN_CODE
        code_type = CODE_ACCESS_TYPE
        code_op = CODE_OP
        code_size = CODE_SIZE
        new_access = MemoryAccess.__new__

        inline = protocol.SUPPORTS_INLINE_FAST_PATH
        if inline:
            resolve_slow = protocol.resolve_slow
            core_states = protocol.core_states
            l1_caches = protocol._l1_caches
            l2_caches = protocol._l2_caches
            line_shift = protocol._line_shift
            track_values = protocol.track_values
            memory_image = protocol.memory_image
            directory_entries = protocol.directory._entries
            comm_local = protocol.HOT_COMMUTATIVE == "local"
            comm_never = protocol.HOT_COMMUTATIVE == "never"
            exclusive_s = StableState.EXCLUSIVE
            modified_s = StableState.MODIFIED
            update_s = StableState.UPDATE
        else:
            access_hot = protocol.access_hot

        # Same deterministic (clock, core_id) heap as the object loop: equal
        # clocks always pop in ascending core-id order.
        if resume is None:
            heap: List[tuple] = [(0.0, i) for i in range(n_cores)]
            barrier_waiters: List[int] = []
        else:
            heap = list(resume[2])
            barrier_waiters = list(resume[3])
        heapq.heapify(heap)
        hit_streak = 0

        while heap or barrier_waiters:
            if not heap:
                self._release_barrier(cursors, barrier_waiters, heap)
                continue

            clock, core_id = heappop(heap)
            cursor = cursors[core_id]
            index = cursor.next_index

            if index >= trace_lens[core_id]:
                cursor.clock = clock
                if cursor.phase < n_phases:
                    barrier_waiters.append(core_id)
                continue

            if cursor.phase < n_phases:
                if index >= phase_boundaries[cursor.phase][core_id]:
                    cursor.clock = clock
                    barrier_waiters.append(core_id)
                    continue

            code = codes_pc[core_id][index]
            address = addrs_pc[core_id][index]
            gap = gaps_pc[core_id][index]
            cursor.next_index = index + 1
            stats = core_stats[core_id]

            # Fused dispatch on the packed type code (integer range compares
            # replace the enum identity checks of the object loop).
            is_comm = False
            if code < store_min:  # LOAD
                overhead = 0.0
                stats.loads += 1
            elif code < atomic_min:  # STORE
                overhead = 0.0
                stats.stores += 1
            elif code < commutative_min:  # ATOMIC_RMW
                overhead = atomic_overhead
                stats.atomics += 1
            elif code < remote_min:  # COMMUTATIVE_UPDATE
                overhead = commutative_overhead
                stats.commutative_updates += 1
                is_comm = True
            else:  # REMOTE_UPDATE
                overhead = commutative_overhead
                stats.remote_updates += 1
                is_comm = True

            think = gap * cpi
            issue_time = clock + think

            hit_level = 0
            result = None
            if inline:
                line_addr = address >> line_shift
                states = core_states[core_id]
                state = states.get(line_addr)
                level = None
                if state is not None and (
                    (not comm_never) if is_comm else (state is not update_s)
                ):
                    # Same hand-duplicated private-cache probe as the object
                    # loop (see the WARNING in CoherenceProtocol._private_level).
                    l1 = l1_caches[core_id]
                    cache_set = l1._sets.get(line_addr % l1._num_sets)
                    info = cache_set.get(line_addr) if cache_set is not None else None
                    if info is not None:
                        l1.hits += 1
                        l1._tick = tick = l1._tick + 1
                        info.last_use = tick
                        level = 1
                    else:
                        l1.misses += 1
                        l2 = l2_caches[core_id]
                        cache_set = l2._sets.get(line_addr % l2._num_sets)
                        info = cache_set.get(line_addr) if cache_set is not None else None
                        if info is not None:
                            l2.hits += 1
                            l2._tick = tick = l2._tick + 1
                            info.last_use = tick
                            l1.insert(line_addr)
                            level = 2
                        else:
                            l2.misses += 1
                            level = 0
                    if level:
                        if code < store_min:  # LOAD
                            if state is not update_s:
                                hit_level = level
                        elif state is modified_s or state is exclusive_s:
                            states[line_addr] = modified_s
                            if track_values:
                                if code < atomic_min:  # STORE
                                    value = values_pc[core_id][index]
                                    if value is not None:
                                        memory_image[address] = value
                                else:
                                    access = new_access(MemoryAccess)
                                    access.access_type = code_type[code]
                                    access.address = address
                                    access.op = code_op[code]
                                    access.value = values_pc[core_id][index]
                                    access.think_instructions = int(gap)
                                    access.size_bytes = code_size[code]
                                    protocol._functional_update(access)
                            if is_comm and comm_local:
                                protocol.stat_local_updates += 1
                            hit_level = level
                        elif state is update_s and is_comm and comm_local:
                            entry = directory_entries.get(line_addr)
                            op = code_op[code]
                            if op is not None and entry is not None and entry.op is op:
                                if track_values:
                                    access = new_access(MemoryAccess)
                                    access.access_type = code_type[code]
                                    access.address = address
                                    access.op = op
                                    access.value = values_pc[core_id][index]
                                    access.think_instructions = int(gap)
                                    access.size_bytes = code_size[code]
                                    protocol._apply_local_update(core_id, access)
                                protocol.stat_local_updates += 1
                                hit_level = level
                if not hit_level:
                    access = new_access(MemoryAccess)
                    access.access_type = code_type[code]
                    access.address = address
                    access.op = code_op[code]
                    access.value = values_pc[core_id][index]
                    access.think_instructions = int(gap)
                    access.size_bytes = code_size[code]
                    result = resolve_slow(
                        core_id, access, line_addr, state, level, issue_time
                    )
            else:
                access = new_access(MemoryAccess)
                access.access_type = code_type[code]
                access.address = address
                access.op = code_op[code]
                access.value = values_pc[core_id][index]
                access.think_instructions = int(gap)
                access.size_bytes = code_size[code]
                result = access_hot(core_id, access, issue_time)
                if result.__class__ is int:
                    hit_level = result
                    result = None

            if hit_level:
                latency_record = stats.latency
                latency_record.l1 += l1_latency
                if hit_level == 1:
                    latency = l1_hit_total
                else:
                    latency_record.l2 += l2_latency
                    latency = l2_hit_total
                stats.l1_hits += 1
            else:
                latency = result.total_latency
                stats.latency.add(result.latency)
                if result.private_hit:
                    stats.l1_hits += 1

            stats.accesses += 1
            stats.compute_cycles += think + overhead
            stats.memory_cycles += latency

            heappush(heap, (issue_time + overhead + latency, core_id))

            if hit_level:
                hit_streak += 1
                if hit_streak == REENTER_STREAK and reenter:
                    # Every core is hitting: hand the hot stretch back to the
                    # batched kernel.  The heap carries the live clocks.
                    for entry_clock, entry_id in heap:
                        cursors[entry_id].clock = entry_clock
                    cursor_state = [
                        (cursor.clock, cursor.next_index, cursor.phase)
                        for cursor in cursors
                    ]
                    return cursor_state, core_stats, list(heap), list(barrier_waiters)
            else:
                hit_streak = 0

        return self._finish(workload, cursors, core_stats)

    def _finish(
        self,
        workload: WorkloadTrace,
        cursors: Sequence[_CoreCursor],
        core_stats: List[CoreStats],
    ) -> SimulationResult:
        """Finalize the protocol and assemble the result structure."""
        self.protocol.finalize()
        # Telemetry fold (no-op when REPRO_OBS=off): one-way, after the
        # result statistics are final, so nothing here can feed the result.
        self.protocol.obs_fold_stats()

        for cursor, stats in zip(cursors, core_stats):
            stats.finish_time = cursor.clock

        run_cycles = max((stats.finish_time for stats in core_stats), default=0.0)
        interconnect = self.protocol.interconnect
        traffic = interconnect.traffic
        reductions = self.protocol.stat_full_reductions
        partials = self.protocol.stat_partial_reductions

        return SimulationResult(
            protocol=self.protocol.name,
            workload=workload.name,
            n_cores=len(core_stats),
            core_stats=core_stats,
            run_cycles=run_cycles,
            offchip_bytes=traffic.off_chip_bytes,
            onchip_bytes=traffic.on_chip_bytes,
            reductions=reductions,
            partial_reductions=partials,
            invalidations=self.protocol.stat_invalidations,
            downgrades=self.protocol.stat_downgrades,
            final_values=dict(self.protocol.memory_image) if self.track_values else None,
            params=dict(workload.params),
            bytes_by_type=dict(traffic.bytes_by_type),
            link_stats=interconnect.link_report(run_cycles),
        )

    @staticmethod
    def _release_barrier(
        cursors: Sequence[_CoreCursor], barrier_waiters: List[int], heap: List[tuple]
    ) -> None:
        """Advance every waiting core past the barrier at the barrier time."""
        if not barrier_waiters:
            return
        release_time = max(cursors[core_id].clock for core_id in barrier_waiters)
        for core_id in barrier_waiters:
            cursor = cursors[core_id]
            cursor.clock = release_time
            cursor.phase += 1
            heapq.heappush(heap, (cursor.clock, core_id))
        barrier_waiters.clear()


def simulate(
    workload: WorkloadTrace,
    config: SystemConfig,
    protocol: str = "MESI",
    *,
    track_values: bool = True,
) -> SimulationResult:
    """Convenience wrapper: build the protocol engine and run the workload."""
    engine = make_protocol(protocol, config, track_values=track_values)
    simulator = MulticoreSimulator(config, engine, track_values=track_values)
    return simulator.run(workload)


def compare_protocols(
    workload_factory: Callable[[int], WorkloadTrace],
    config: SystemConfig,
    protocols: Sequence[str] = ("MESI", "COUP"),
    *,
    track_values: bool = False,
    share_trace: bool = True,
) -> Dict[str, SimulationResult]:
    """Run the same workload under several protocols.

    The factory receives the core count and is called once: trace generation
    is deterministic and the simulator never mutates a trace, so the one
    materialized trace is shared across every protocol (the equivalence
    suite pins that results are bit-identical to per-protocol regeneration).
    ``share_trace=False`` restores the old regenerate-per-protocol behavior,
    which only matters for diagnosing a workload whose generation has become
    nondeterministic.
    """
    results: Dict[str, SimulationResult] = {}
    workload = workload_factory(config.n_cores) if share_trace else None
    for protocol in protocols:
        trace = workload if share_trace else workload_factory(config.n_cores)
        results[protocol] = simulate(
            trace, config, protocol, track_values=track_values
        )
    return results
