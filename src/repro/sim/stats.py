"""Statistics collected by the timing simulator.

The central structures mirror what the paper reports:

* per-access latency broken down by hierarchy level (Fig. 11's AMAT stacks),
* off-chip traffic (Sec. 5.2's traffic-reduction factors),
* per-core run times from which speedups are computed (Fig. 10, 12, 13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


#: Components of the AMAT breakdown, in the stacking order used by Fig. 11.
AMAT_COMPONENTS = (
    "l2",
    "l3",
    "offchip_network",
    "l4_invalidations",
    "l4",
    "main_memory",
)


@dataclass(slots=True)
class LatencyBreakdown:
    """Critical-path latency of one access (or an accumulated average).

    Every field is in core cycles.  ``l4_invalidations`` covers the
    critical-path delay a request suffers because other sharers must be
    invalidated, downgraded, or reduced — the component COUP attacks.
    """

    l1: float = 0.0
    l2: float = 0.0
    l3: float = 0.0
    offchip_network: float = 0.0
    l4: float = 0.0
    l4_invalidations: float = 0.0
    main_memory: float = 0.0
    serialization: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.l1
            + self.l2
            + self.l3
            + self.offchip_network
            + self.l4
            + self.l4_invalidations
            + self.main_memory
            + self.serialization
        )

    def add(self, other: "LatencyBreakdown") -> None:
        self.l1 += other.l1
        self.l2 += other.l2
        self.l3 += other.l3
        self.offchip_network += other.offchip_network
        self.l4 += other.l4
        self.l4_invalidations += other.l4_invalidations
        self.main_memory += other.main_memory
        self.serialization += other.serialization

    def scaled(self, factor: float) -> "LatencyBreakdown":
        return LatencyBreakdown(
            l1=self.l1 * factor,
            l2=self.l2 * factor,
            l3=self.l3 * factor,
            offchip_network=self.offchip_network * factor,
            l4=self.l4 * factor,
            l4_invalidations=self.l4_invalidations * factor,
            main_memory=self.main_memory * factor,
            serialization=self.serialization * factor,
        )

    def as_dict(self, include_l1: bool = False) -> Dict[str, float]:
        """AMAT components keyed as in Fig. 11.

        Serialization delay at the directory is folded into the
        ``l4_invalidations`` component, since in the paper that is where
        contended atomic updates show up (waiting for other sharers).
        """
        result = {
            "l2": self.l2,
            "l3": self.l3,
            "offchip_network": self.offchip_network,
            "l4_invalidations": self.l4_invalidations + self.serialization,
            "l4": self.l4,
            "main_memory": self.main_memory,
        }
        if include_l1:
            result["l1"] = self.l1
        return result


@dataclass(slots=True)
class CoreStats:
    """Per-core execution statistics."""

    core_id: int
    finish_time: float = 0.0
    memory_cycles: float = 0.0
    compute_cycles: float = 0.0
    accesses: int = 0
    loads: int = 0
    stores: int = 0
    atomics: int = 0
    commutative_updates: int = 0
    remote_updates: int = 0
    l1_hits: int = 0
    latency: LatencyBreakdown = field(default_factory=LatencyBreakdown)

    @property
    def amat(self) -> float:
        """Average memory access time over this core's accesses."""
        return self.latency.total / self.accesses if self.accesses else 0.0


@dataclass(slots=True)
class LinkStats:
    """Per-link utilization report from the interconnect contention model.

    Field order matches the key order the legacy dict report used, so the
    serialized form (:meth:`to_jsonable`) is byte-identical to records
    written before this became a dataclass.
    """

    #: Topology name (``single_switch``, ``ring``, ...).
    topology: str
    #: Contention-epoch length in cycles.
    epoch_cycles: float
    #: Per-link bandwidth used to compute utilizations.
    link_bandwidth_bytes_per_cycle: float
    #: Per-link ``{"bytes": ..., "utilization": ...}``, keyed by the
    #: canonical link label, sorted.
    links: Dict[str, Dict[str, float]]
    #: Directory-bank request totals keyed by ``"<node>.b<bank>"``.
    bank_requests: Dict[str, int]
    max_link_utilization: float
    mean_link_utilization: float
    #: Total contention waiting time charged across the run.
    surcharge_cycles: float
    offchip_transfers: int

    def to_jsonable(self) -> dict:
        """JSON-native projection (the explicit inverse of :meth:`from_jsonable`)."""
        return {
            "topology": self.topology,
            "epoch_cycles": self.epoch_cycles,
            "link_bandwidth_bytes_per_cycle": self.link_bandwidth_bytes_per_cycle,
            "links": {label: dict(entry) for label, entry in sorted(self.links.items())},
            "bank_requests": dict(self.bank_requests),
            "max_link_utilization": self.max_link_utilization,
            "mean_link_utilization": self.mean_link_utilization,
            "surcharge_cycles": self.surcharge_cycles,
            "offchip_transfers": self.offchip_transfers,
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "LinkStats":
        """Rebuild from :meth:`to_jsonable` output.

        No numeric coercion: values pass through exactly as JSON decoded
        them, so a serialize/deserialize round trip is bit-identical.
        """
        return cls(
            topology=data["topology"],
            epoch_cycles=data["epoch_cycles"],
            link_bandwidth_bytes_per_cycle=data["link_bandwidth_bytes_per_cycle"],
            links={label: dict(entry) for label, entry in sorted(data["links"].items())},
            bank_requests=dict(data["bank_requests"]),
            max_link_utilization=data["max_link_utilization"],
            mean_link_utilization=data["mean_link_utilization"],
            surcharge_cycles=data["surcharge_cycles"],
            offchip_transfers=data["offchip_transfers"],
        )


@dataclass(slots=True)
class SimulationResult:
    """Outcome of one simulation run."""

    protocol: str
    workload: str
    n_cores: int
    core_stats: List[CoreStats]
    run_cycles: float
    offchip_bytes: int
    onchip_bytes: int
    reductions: int = 0
    partial_reductions: int = 0
    invalidations: int = 0
    downgrades: int = 0
    final_values: Optional[dict] = None
    params: dict = field(default_factory=dict)
    #: Off-chip + on-chip bytes broken down by coherence message type.
    bytes_by_type: Optional[Dict[str, int]] = None
    #: Per-link utilization report from the interconnect contention model
    #: (None unless the run had contention enabled).
    link_stats: Optional[LinkStats] = None

    @property
    def total_accesses(self) -> int:
        return sum(stats.accesses for stats in self.core_stats)

    @property
    def amat(self) -> float:
        """Average memory access time across all cores' accesses."""
        total_latency = sum(stats.latency.total for stats in self.core_stats)
        total_accesses = self.total_accesses
        return total_latency / total_accesses if total_accesses else 0.0

    def amat_breakdown(self) -> Dict[str, float]:
        """Average per-access latency split by component (Fig. 11)."""
        total_accesses = self.total_accesses
        accumulated = LatencyBreakdown()
        for stats in self.core_stats:
            accumulated.add(stats.latency)
        if total_accesses == 0:
            return {component: 0.0 for component in AMAT_COMPONENTS}
        per_access = accumulated.scaled(1.0 / total_accesses)
        return per_access.as_dict()

    def to_jsonable(self) -> dict:
        """Represent the result with JSON-native types only.

        The sweep engine persists completed points as JSON; the round trip
        through :meth:`from_jsonable` is bit-identical because JSON keeps
        ints exact and floats via shortest-repr.  ``final_values`` keys are
        int addresses, which JSON objects cannot hold, so they are stored as
        ``[address, value]`` pairs — sorted by address, so the serialized
        form is canonical: the memory image's dict insertion order depends
        on which simulation path ran (the batched kernel may interleave
        cores' first writes differently from the scalar loop), but the
        per-address values are pinned identical.
        """
        from dataclasses import asdict

        data = asdict(self)  # recurses into CoreStats and LatencyBreakdown
        if self.final_values is not None:
            data["final_values"] = [
                [address, value] for address, value in sorted(self.final_values.items())
            ]
        if self.link_stats is not None:
            # Explicit projection (asdict's recursion happens to agree, but
            # the serialized form is a contract, not an accident).
            data["link_stats"] = self.link_stats.to_jsonable()
        return data

    @classmethod
    def from_jsonable(cls, data: dict) -> "SimulationResult":
        """Rebuild a result previously serialized with :meth:`to_jsonable`."""
        data = dict(data)
        data["core_stats"] = [
            CoreStats(
                **{**stats, "latency": LatencyBreakdown(**stats["latency"])}
            )
            for stats in data["core_stats"]
        ]
        if data.get("final_values") is not None:
            data["final_values"] = {
                address: value for address, value in data["final_values"]
            }
        if data.get("link_stats") is not None and not isinstance(
            data["link_stats"], LinkStats
        ):
            data["link_stats"] = LinkStats.from_jsonable(data["link_stats"])
        return cls(**data)

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """Speedup of this run relative to a baseline run (same workload)."""
        if self.run_cycles <= 0:
            raise ValueError("run has non-positive duration")
        return baseline.run_cycles / self.run_cycles

    def summary(self) -> dict:
        """Compact dictionary used by experiment tables and EXPERIMENTS.md."""
        result = {
            "protocol": self.protocol,
            "workload": self.workload,
            "n_cores": self.n_cores,
            "run_cycles": self.run_cycles,
            "amat": self.amat,
            "offchip_bytes": self.offchip_bytes,
            "onchip_bytes": self.onchip_bytes,
            "reductions": self.reductions,
            "partial_reductions": self.partial_reductions,
            "invalidations": self.invalidations,
        }
        if self.bytes_by_type is not None:
            result["bytes_by_type"] = dict(self.bytes_by_type)
        if self.link_stats is not None:
            result["max_link_utilization"] = self.link_stats.max_link_utilization
            result["mean_link_utilization"] = self.link_stats.mean_link_utilization
            result["contention_surcharge_cycles"] = self.link_stats.surcharge_cycles
        return result


def speedup_curve(
    baseline_single_core: SimulationResult, runs: List[SimulationResult]
) -> List[dict]:
    """Speedups relative to a single-core baseline run (Fig. 10 normalisation)."""
    rows = []
    for run in runs:
        rows.append(
            {
                "protocol": run.protocol,
                "n_cores": run.n_cores,
                "speedup": baseline_single_core.run_cycles / run.run_cycles,
            }
        )
    return rows
