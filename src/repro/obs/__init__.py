"""``repro.obs`` — zero-overhead-when-off telemetry for the reproduction.

Three modes, selected by the ``REPRO_OBS`` environment knob (registered in
:data:`repro.experiments.settings.ENV_KNOBS`, rule H303):

* ``off`` (default) — :func:`get_registry` returns ``None``; every
  instrumented site in the simulator and the campaign fabric reduces to a
  single ``is None`` guard on a slow path.  Gated at <=1% overhead on the
  paper grid by ``benchmarks/test_obs.py``.
* ``counters`` — integer counters only (stint transitions, bail reasons,
  merge-gate causes, cache hits, worker lifecycle); no host-clock reads
  beyond the campaign fabric's existing ones.
* ``full`` — counters plus phase timing histograms (slow-event boundary
  phases, journal append latency) and JSONL event segments under
  :func:`events_dir`, rendered by ``python -m repro.obs.report``.

The telemetry contract, relied on by the golden-fingerprint suites: **no
value produced here ever feeds a** :class:`~repro.sim.stats.SimulationResult`.
``to_jsonable()`` output is byte-identical with ``REPRO_OBS=off`` and
``REPRO_OBS=full`` (asserted by ``tests/obs/test_bit_identity.py``), and
``REPRO_OBS``/``REPRO_OBS_DIR`` never enter sweep-cache content hashes.

All host-clock reads route through :mod:`repro.obs.registry`, the single
module on repro-lint's ``OBS_WALLCLOCK_MODULES`` allowlist (rule D103).
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

from repro.obs.registry import ObsRegistry

__all__ = [
    "MODES",
    "events_dir",
    "events_enabled",
    "get_registry",
    "mode",
    "reconfigure",
    "timing_registry",
]

#: Accepted ``REPRO_OBS`` values, in increasing order of cost.
MODES: Tuple[str, ...] = ("off", "counters", "full")

_DEFAULT_EVENTS_DIR = os.path.join("results", "obs")

_mode: Optional[str] = None
_registry: Optional[ObsRegistry] = None
_events_dir: Optional[str] = None


def _parse_mode(value: str) -> str:
    normalized = value.strip().lower()
    if normalized == "":
        return "off"
    if normalized not in MODES:
        raise ValueError(
            f"REPRO_OBS must be one of {'|'.join(MODES)}, got {value!r}"
        )
    return normalized


def _configure_from_env() -> None:
    global _mode, _registry, _events_dir
    _mode = _parse_mode(os.environ.get("REPRO_OBS", "off"))
    _events_dir = os.environ.get("REPRO_OBS_DIR", "") or _DEFAULT_EVENTS_DIR
    _registry = None if _mode == "off" else ObsRegistry(timing=_mode == "full")


def mode() -> str:
    """Current telemetry mode (``off`` / ``counters`` / ``full``).

    Read from the environment once per process and cached; workers spawned
    by the campaign fabric therefore inherit the campaign's mode whether
    they fork (inherit the cache) or spawn (re-read the same environment).
    """
    if _mode is None:
        _configure_from_env()
    assert _mode is not None
    return _mode


def get_registry() -> Optional[ObsRegistry]:
    """The process-wide registry, or ``None`` when telemetry is off.

    The ``None`` return is the whole zero-overhead design: instrumented
    code stores this once (a slot, a local) and each site costs one
    ``is None`` test when disabled.
    """
    if _mode is None:
        _configure_from_env()
    return _registry


def timing_registry() -> Optional[ObsRegistry]:
    """The registry only when phase timing is on (``full``), else ``None``."""
    registry = get_registry()
    if registry is not None and registry.timing:
        return registry
    return None


def events_enabled() -> bool:
    """Whether JSONL event segments should be written (``full`` only)."""
    return mode() == "full"


def events_dir() -> str:
    """Directory for JSONL event segments (``REPRO_OBS_DIR``, default
    ``results/obs``)."""
    if _mode is None:
        _configure_from_env()
    assert _events_dir is not None
    return _events_dir


def reconfigure(
    obs_mode: Optional[str] = None, directory: Optional[str] = None
) -> Optional[ObsRegistry]:
    """Re-read or override the telemetry configuration (tests use this).

    With no arguments, drops the cached configuration and re-reads the
    environment on next use.  With arguments, installs the given mode /
    events directory immediately (bypassing the environment) and returns
    the fresh registry (``None`` for ``off``).
    """
    global _mode, _registry, _events_dir
    if obs_mode is None and directory is None:
        _mode = None
        _registry = None
        _events_dir = None
        return None
    if obs_mode is not None:
        _mode = _parse_mode(obs_mode)
        _registry = None if _mode == "off" else ObsRegistry(timing=_mode == "full")
    elif _mode is None:
        _configure_from_env()
    if directory is not None:
        _events_dir = directory
    elif _events_dir is None:
        _events_dir = os.environ.get("REPRO_OBS_DIR", "") or _DEFAULT_EVENTS_DIR
    return _registry
