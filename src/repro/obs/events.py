"""JSONL event segments: the obs subsystem's on-disk stream format.

Each emitting process appends to its **own** segment file
(``<stream>-<pid>-<k>.jsonl`` under the obs directory), so campaign
workers and the parent runner never contend for a file and a killed
worker can at worst tear its own tail.  Records are one canonical JSON
object per line::

    {"kind": "point_done", "pid": 1234, "seq": 7, "t_s": 12.03, ...}

``t_s`` is seconds since the writer opened, read through the obs
registry's clock (this module contains no direct wall-clock call — rule
D103 covers ``repro.obs`` and only :mod:`repro.obs.registry` is
allowlisted).

Readers (:func:`read_events`, :func:`fold_events`) degrade silently:
malformed lines (torn tails) and foreign files are skipped, never
raised, because the fold runs inside ``scripts/collect_results.py`` where
a damaged telemetry stream must not abort result collection.
"""

from __future__ import annotations

import glob
import json
import os
from types import TracebackType
from typing import Dict, IO, List, Mapping, Optional, Type

from repro.obs import registry as _registry

__all__ = [
    "EventWriter",
    "fold_events",
    "process_writer",
    "profile_summary",
    "read_events",
    "read_segment",
    "reset_process_writer",
]

SEGMENT_SUFFIX = ".jsonl"


class EventWriter:
    """Append-only JSONL segment writer for one process and stream."""

    __slots__ = ("_handle", "_pid", "_seq", "_t0", "path")

    def __init__(self, directory: str, stream: str) -> None:
        os.makedirs(directory, exist_ok=True)
        self._pid = os.getpid()
        handle: Optional[IO[str]] = None
        path = ""
        for suffix in range(1000):
            path = os.path.join(
                directory, f"{stream}-{self._pid:07d}-{suffix:03d}{SEGMENT_SUFFIX}"
            )
            try:
                handle = open(path, "x", encoding="utf-8")
            except FileExistsError:
                continue
            break
        if handle is None:  # pragma: no cover - 1000 live segments for one pid
            raise OSError(f"cannot allocate an event segment under {directory}")
        self.path = path
        self._handle = handle
        self._seq = 0
        self._t0 = _registry.clock()

    def emit(self, kind: str, fields: Optional[Mapping[str, object]] = None) -> None:
        """Append one event record and flush it to the OS."""
        record: Dict[str, object] = dict(fields) if fields else {}
        record["kind"] = kind
        record["pid"] = self._pid
        record["seq"] = self._seq
        record["t_s"] = round(_registry.clock() - self._t0, 6)
        self._handle.write(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self._handle.flush()
        self._seq += 1

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "EventWriter":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()


# -- per-process lazy writer (campaign workers) -----------------------------
#
# Workers are forked/spawned by the supervisor and have no natural place to
# thread a writer handle through; they fetch one lazily.  The cached writer
# is keyed by pid so a fork never inherits (and interleaves into) its
# parent's open segment.

_process_writer: Optional[EventWriter] = None
_process_writer_pid: Optional[int] = None


def process_writer(directory: str, stream: str = "worker") -> EventWriter:
    """This process's lazily-opened segment writer (fork-safe)."""
    global _process_writer, _process_writer_pid
    if _process_writer is None or _process_writer_pid != os.getpid():
        _process_writer = EventWriter(directory, stream)
        _process_writer_pid = os.getpid()
    return _process_writer


def reset_process_writer() -> None:
    """Close and drop the cached per-process writer (tests use this)."""
    global _process_writer, _process_writer_pid
    if _process_writer is not None:
        _process_writer.close()
    _process_writer = None
    _process_writer_pid = None


# -- readers ----------------------------------------------------------------


def read_segment(path: str) -> List[Dict[str, object]]:
    """Parse one segment, skipping malformed lines (torn tails)."""
    events: List[Dict[str, object]] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail or foreign line
                if isinstance(record, dict) and "kind" in record:
                    events.append(record)
    except OSError:
        return []
    return events


def read_events(directory: str) -> List[Dict[str, object]]:
    """All events from every segment under ``directory``, in a deterministic
    (segment-name, then in-file) order.  Missing directory -> empty list."""
    events: List[Dict[str, object]] = []
    for path in sorted(glob.glob(os.path.join(directory, f"*{SEGMENT_SUFFIX}"))):
        events.extend(read_segment(path))
    return events


def fold_events(directory: str) -> Optional[Dict[str, object]]:
    """Aggregate every segment under ``directory`` into one digest.

    Returns ``None`` when no events exist (so callers can degrade
    silently).  The digest carries:

    * ``counters`` — summed across every ``point_obs`` / ``campaign_obs``
      registry-delta event;
    * ``phases`` — merged timing histograms, same sources;
    * ``points`` — one entry per ``point_done`` campaign event;
    * ``workers`` — supervisor lifecycle events, chronological per pid.
    """
    events = read_events(directory)
    if not events:
        return None
    n_segments = len(
        glob.glob(os.path.join(directory, f"*{SEGMENT_SUFFIX}"))
    )
    counters: Dict[str, int] = {}
    phases: Dict[str, _registry.PhaseAggregate] = {}
    points: List[Dict[str, object]] = []
    workers: List[Dict[str, object]] = []
    for event in events:
        kind = event.get("kind")
        if kind in ("point_obs", "campaign_obs"):
            event_counters = event.get("counters")
            if isinstance(event_counters, dict):
                for name in sorted(event_counters):
                    value = event_counters[name]
                    if isinstance(value, int):
                        counters[name] = counters.get(name, 0) + value
            event_phases = event.get("phases")
            if isinstance(event_phases, dict):
                for name in sorted(event_phases):
                    sample = event_phases[name]
                    if isinstance(sample, dict):
                        _registry.merge_phase(phases, name, sample)
        elif kind == "point_done":
            points.append(event)
        elif kind == "worker":
            workers.append(event)
    return {
        "counters": {name: counters[name] for name in sorted(counters)},
        "n_events": len(events),
        "n_segments": n_segments,
        "phases": {name: dict(phases[name]) for name in sorted(phases)},
        "points": points,
        "workers": workers,
    }


def profile_summary(
    fold: Mapping[str, object], top_phases: int = 5
) -> Dict[str, object]:
    """Compact profile for ``summary.json``: top boundary-phase costs plus
    bail-reason and merge-gate counter groups."""
    phases = fold.get("phases")
    counters = fold.get("counters")
    phase_rows: List[Dict[str, object]] = []
    if isinstance(phases, dict):
        def total_of(name: str) -> float:
            sample = phases[name]
            total = sample.get("total_s", 0.0) if isinstance(sample, dict) else 0.0
            return float(total) if isinstance(total, (int, float)) else 0.0

        ranked = sorted(phases, key=lambda name: (-total_of(name), name))
        for name in ranked[:top_phases]:
            sample = phases[name]
            if not isinstance(sample, dict):
                continue
            count = sample.get("count", 0)
            total = total_of(name)
            calls = count if isinstance(count, int) else 0
            phase_rows.append(
                {
                    "calls": calls,
                    "mean_us": round(1e6 * total / calls, 3) if calls else 0.0,
                    "phase": name,
                    "total_s": round(total, 6),
                }
            )

    def counter_group(prefix: str) -> Dict[str, int]:
        group: Dict[str, int] = {}
        if isinstance(counters, dict):
            for name in sorted(counters):
                value = counters[name]
                if name.startswith(prefix) and isinstance(value, int):
                    group[name[len(prefix):]] = value
        return group

    return {
        "bail_reasons": counter_group("kernel.bail."),
        "merge_gate": counter_group("kernel.merge."),
        "top_phases": phase_rows,
    }
