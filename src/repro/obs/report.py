"""``python -m repro.obs.report`` — render telemetry event streams.

Reads the JSONL segments a ``REPRO_OBS=full`` run left under the obs
directory and prints three views:

* **Phase breakdown** — per slow-path boundary phase: call count, total
  seconds, mean and approximate p50/p95 microseconds (from the log2
  histogram).  This is the direct answer to ROADMAP item 1's "where does
  the ~100us/event go" profiling ask.
* **Counter Pareto** — bail reasons and merge-gate accept/decline causes
  ranked by frequency with cumulative percentages, so the dominant
  decline cause on a conflict-dense point is the first line.
* **Worker timeline** — the campaign fabric's lifecycle events
  (spawn/dispatch/complete/fail/quarantine) in chronological order per
  worker.

Exit codes: 0 rendered, 1 no event segments found, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Mapping, Optional

import repro.obs as obs
from repro.obs.events import fold_events, profile_summary
from repro.obs.registry import phase_percentile_us

__all__ = ["main", "render"]


def _phase_table(phases: Mapping[str, object], out: List[str]) -> None:
    out.append("Phase breakdown (slow-path boundary + campaign fabric)")
    header = (
        f"  {'phase':<24} {'calls':>10} {'total_s':>10} "
        f"{'mean_us':>10} {'p50_us':>9} {'p95_us':>9}"
    )
    out.append(header)
    out.append("  " + "-" * (len(header) - 2))

    def total_of(name: str) -> float:
        sample = phases[name]
        if isinstance(sample, dict):
            total = sample.get("total_s", 0.0)
            if isinstance(total, (int, float)):
                return float(total)
        return 0.0

    for name in sorted(phases, key=lambda n: (-total_of(n), n)):
        sample = phases[name]
        if not isinstance(sample, dict):
            continue
        count = sample.get("count", 0)
        calls = count if isinstance(count, int) else 0
        total = total_of(name)
        mean_us = 1e6 * total / calls if calls else 0.0
        p50 = phase_percentile_us(sample, 0.50)
        p95 = phase_percentile_us(sample, 0.95)
        out.append(
            f"  {name:<24} {calls:>10} {total:>10.4f} {mean_us:>10.2f} "
            f"{(f'{p50:.0f}' if p50 is not None else '-'):>9} "
            f"{(f'{p95:.0f}' if p95 is not None else '-'):>9}"
        )


def _pareto(title: str, group: Mapping[str, int], out: List[str]) -> None:
    out.append(title)
    total = sum(group.values())
    if total <= 0:
        out.append("  (no samples)")
        return
    cumulative = 0
    for name in sorted(group, key=lambda n: (-group[n], n)):
        cumulative += group[name]
        out.append(
            f"  {name:<28} {group[name]:>12} {100.0 * group[name] / total:>6.1f}% "
            f"(cum {100.0 * cumulative / total:>5.1f}%)"
        )


def _worker_timeline(workers: List[Dict[str, object]], out: List[str]) -> None:
    out.append("Worker timeline")
    if not workers:
        out.append("  (no lifecycle events)")
        return

    def sort_key(event: Dict[str, object]) -> tuple[float, int]:
        t_s = event.get("t_s", 0.0)
        seq = event.get("seq", 0)
        return (
            float(t_s) if isinstance(t_s, (int, float)) else 0.0,
            seq if isinstance(seq, int) else 0,
        )

    for event in sorted(workers, key=sort_key):
        t_s = event.get("t_s", 0.0)
        stamp = float(t_s) if isinstance(t_s, (int, float)) else 0.0
        what = event.get("event", "?")
        worker = event.get("worker", "?")
        detail_parts = []
        for key in ("task", "attempt", "status", "reason", "pid"):
            if key in event:
                detail_parts.append(f"{key}={event[key]}")
        out.append(f"  t={stamp:>9.3f}s  worker {worker!s:<4} {what!s:<12} "
                   + " ".join(detail_parts))


def render(fold: Mapping[str, object]) -> str:
    """The full text report for one folded event stream."""
    out: List[str] = []
    counters = fold.get("counters")
    phases = fold.get("phases")
    points = fold.get("points")
    workers = fold.get("workers")
    out.append(
        f"repro.obs report — {fold.get('n_events', 0)} events in "
        f"{fold.get('n_segments', 0)} segment(s)"
    )
    out.append("")
    if isinstance(phases, dict) and phases:
        _phase_table(phases, out)
        out.append("")
    profile = profile_summary(fold)
    bail = profile.get("bail_reasons")
    gate = profile.get("merge_gate")
    if isinstance(gate, dict) and gate:
        _pareto("Merge-gate accept/decline Pareto", gate, out)
        out.append("")
    if isinstance(bail, dict) and bail:
        _pareto("Bail-reason Pareto", bail, out)
        out.append("")
    if isinstance(counters, dict) and counters:
        out.append("Counters")
        for name in sorted(counters):
            out.append(f"  {name:<36} {counters[name]:>14}")
        out.append("")
    if isinstance(points, list) and points:
        ok = sum(1 for p in points if p.get("status") == "ok")
        cached = sum(1 for p in points if p.get("cached"))
        out.append(
            f"Campaign points: {len(points)} total, {ok} ok, {cached} cached"
        )
        out.append("")
    if isinstance(workers, list):
        _worker_timeline(workers, out)
    return "\n".join(out).rstrip() + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report", description=__doc__
    )
    parser.add_argument(
        "--obs-dir",
        default=None,
        metavar="DIR",
        help="directory holding JSONL event segments "
        "(default: REPRO_OBS_DIR or results/obs)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the folded digest as canonical JSON instead of text",
    )
    args = parser.parse_args(argv)

    directory = args.obs_dir if args.obs_dir is not None else obs.events_dir()
    fold = fold_events(directory)
    if fold is None:
        print(f"no obs event segments under {directory}", file=sys.stderr)
        print(
            "run a campaign with REPRO_OBS=full to produce them", file=sys.stderr
        )
        return 1
    if args.json:
        print(json.dumps(fold, indent=2, sort_keys=True))
    else:
        sys.stdout.write(render(fold))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
