"""Telemetry registry: counters and phase timers for the obs subsystem.

This module is the **single sanctioned wall-clock island** of the
reproduction.  Rule D103 bans host-clock reads in result-affecting modules
(simulated time is the only clock results may depend on); telemetry, by
contrast, exists precisely to measure host time.  The resolution is
architectural: every timing read in the tree routes through this module's
:func:`clock` / :meth:`ObsRegistry.observe`, and repro-lint's
``OBS_WALLCLOCK_MODULES`` allowlist (see :mod:`repro.lint.context`) names
this file — and only this file — as exempt from D103.  Other ``repro.obs``
modules are *inside* D103's scope on purpose, so a stray ``time.time()``
outside the island is a lint error, not a convention violation.

The contract that keeps telemetry safe:

* **Telemetry never feeds results.**  Nothing here is read back by the
  simulator, the protocol engines, or anything that constructs a
  :class:`~repro.sim.stats.SimulationResult`.  Counters and timers are
  write-only from the simulation's point of view.
* **Zero overhead when off.**  When ``REPRO_OBS=off`` (the default),
  :func:`repro.obs.get_registry` returns ``None`` and every instrumented
  site reduces to one attribute load plus an ``is None`` test — and those
  sites live exclusively on slow paths (stint boundaries, slow-event
  resolution, merge gates), never in the per-access hot loops.
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, Optional, TypedDict

__all__ = [
    "BUCKET_FLOOR_US",
    "N_BUCKETS",
    "ObsRegistry",
    "PhaseAggregate",
    "PhaseStats",
    "bucket_bound_us",
    "bucket_index",
    "clock",
    "merge_phase",
    "phase_percentile_us",
]

#: Histogram geometry: bucket ``i`` covers durations in
#: ``(2**(i-1), 2**i]`` microseconds (bucket 0: everything at or below 1us).
BUCKET_FLOOR_US = 1.0
N_BUCKETS = 24  # 1us .. ~8.4s; the last bucket absorbs the tail.


def clock() -> float:
    """Monotonic host-time read, in seconds.

    The one wall-clock call site telemetry code may use; everything in
    ``repro.obs`` (and every instrumented module outside it) takes
    timestamps through here or :meth:`ObsRegistry.clock`.
    """
    return time.perf_counter()


def bucket_index(seconds: float) -> int:
    """Histogram bucket for a duration (log2-spaced microseconds)."""
    if seconds <= 0.0:
        return 0
    index = int(seconds * 1e6).bit_length()
    return index if index < N_BUCKETS else N_BUCKETS - 1


def bucket_bound_us(index: int) -> float:
    """Upper bound (microseconds) of histogram bucket ``index``."""
    return BUCKET_FLOOR_US * (2.0**index)


class PhaseStats:
    """Accumulated timing for one named phase: count, total, max, histogram."""

    __slots__ = ("buckets", "count", "max_s", "total_s")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0
        self.buckets: List[int] = [0] * N_BUCKETS

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if seconds > self.max_s:
            self.max_s = seconds
        self.buckets[bucket_index(seconds)] += 1

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "buckets": list(self.buckets),
            "count": self.count,
            "max_s": self.max_s,
            "total_s": self.total_s,
        }


class ObsRegistry:
    """Process-local accumulator for telemetry counters and phase timers.

    One registry per process (workers get their own after fork/spawn).
    ``timing`` distinguishes the two enabled modes: ``counters`` keeps
    integer counters only, ``full`` additionally records phase durations.
    Instrumented code holds the registry (or ``None``) in a local/slot and
    guards each site with an ``is None`` test — the registry itself never
    branches on mode, so enabled-mode sites stay cheap too.
    """

    __slots__ = ("_counters", "_phases", "timing")

    def __init__(self, *, timing: bool) -> None:
        self.timing = timing
        self._counters: Dict[str, int] = {}
        self._phases: Dict[str, PhaseStats] = {}

    # -- counters -----------------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (created at zero on first use)."""
        counters = self._counters
        counters[name] = counters.get(name, 0) + n

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    # -- phase timing -------------------------------------------------------

    @staticmethod
    def clock() -> float:
        """Alias of module-level :func:`clock` for call sites holding only
        the registry."""
        return time.perf_counter()

    def observe(self, phase: str, seconds: float) -> None:
        """Record one duration sample under phase ``phase``."""
        stats = self._phases.get(phase)
        if stats is None:
            stats = self._phases[phase] = PhaseStats()
        stats.observe(seconds)

    def phase(self, name: str) -> Optional[PhaseStats]:
        return self._phases.get(name)

    # -- snapshots ----------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Canonical (sorted-key) copy of the current state."""
        return {
            "counters": {name: self._counters[name] for name in sorted(self._counters)},
            "phases": {
                name: self._phases[name].to_jsonable() for name in sorted(self._phases)
            },
        }

    def delta(self, baseline: Mapping[str, object]) -> Dict[str, object]:
        """Change since ``baseline`` (an earlier :meth:`snapshot`).

        Registries accumulate for the life of the process; per-unit-of-work
        telemetry (one sweep point, one campaign) is always reported as a
        snapshot delta so long-lived workers do not smear points together.
        Counters and histogram buckets subtract; ``max_s`` cannot be
        un-maxed, so the delta keeps the current maximum.
        """
        base_counters = baseline.get("counters", {})
        base_phases = baseline.get("phases", {})
        if not isinstance(base_counters, Mapping):  # defensive: foreign JSON
            base_counters = {}
        if not isinstance(base_phases, Mapping):
            base_phases = {}
        counters: Dict[str, int] = {}
        for name in sorted(self._counters):
            before = base_counters.get(name, 0)
            changed = self._counters[name] - (before if isinstance(before, int) else 0)
            if changed:
                counters[name] = changed
        phases: Dict[str, object] = {}
        for name in sorted(self._phases):
            stats = self._phases[name]
            count = stats.count
            total = stats.total_s
            buckets = list(stats.buckets)
            before_phase = base_phases.get(name)
            if isinstance(before_phase, Mapping):
                before_count = before_phase.get("count", 0)
                before_total = before_phase.get("total_s", 0.0)
                before_buckets = before_phase.get("buckets", [])
                if isinstance(before_count, int):
                    count -= before_count
                if isinstance(before_total, (int, float)):
                    total -= float(before_total)
                if isinstance(before_buckets, list):
                    buckets = [
                        value
                        - (
                            before_buckets[i]
                            if i < len(before_buckets)
                            and isinstance(before_buckets[i], int)
                            else 0
                        )
                        for i, value in enumerate(buckets)
                    ]
            if count > 0:
                phases[name] = {
                    "buckets": buckets,
                    "count": count,
                    "max_s": stats.max_s,
                    "total_s": total,
                }
        return {"counters": counters, "phases": phases}

    def clear(self) -> None:
        self._counters.clear()
        self._phases.clear()


class PhaseAggregate(TypedDict):
    """JSON-shaped aggregate of one phase across many serialized samples."""

    buckets: List[int]
    count: int
    max_s: float
    total_s: float


def merge_phase(
    into: Dict[str, PhaseAggregate], name: str, sample: Mapping[str, object]
) -> None:
    """Fold one serialized phase record into an aggregate dict.

    Shared by the event folder and the report: ``sample`` is a
    ``PhaseStats.to_jsonable()``-shaped mapping (possibly a delta read back
    from a JSONL segment); malformed fields are ignored rather than raised,
    because fold paths must degrade silently on foreign data.
    """
    count = sample.get("count", 0)
    total = sample.get("total_s", 0.0)
    max_s = sample.get("max_s", 0.0)
    buckets = sample.get("buckets", [])
    if not isinstance(count, int) or count <= 0:
        return
    entry = into.setdefault(
        name,
        PhaseAggregate(buckets=[0] * N_BUCKETS, count=0, max_s=0.0, total_s=0.0),
    )
    entry["count"] += count
    if isinstance(total, (int, float)):
        entry["total_s"] += float(total)
    if isinstance(max_s, (int, float)):
        entry["max_s"] = max(entry["max_s"], float(max_s))
    if isinstance(buckets, list):
        merged = entry["buckets"]
        for i, value in enumerate(buckets[:N_BUCKETS]):
            if isinstance(value, int):
                merged[i] += value


def phase_percentile_us(phase: Mapping[str, object], fraction: float) -> Optional[float]:
    """Approximate percentile (microseconds) from a phase's histogram.

    Returns the upper bound of the first bucket at which the cumulative
    sample count reaches ``fraction`` of the total; ``None`` when the phase
    holds no samples or no histogram.
    """
    count = phase.get("count", 0)
    buckets = phase.get("buckets", [])
    if not isinstance(count, int) or count <= 0 or not isinstance(buckets, list):
        return None
    threshold = fraction * count
    seen = 0
    for index, value in enumerate(buckets):
        if isinstance(value, int):
            seen += value
        if seen >= threshold:
            return bucket_bound_us(index)
    return bucket_bound_us(len(buckets) - 1)
