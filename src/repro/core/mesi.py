"""Baseline MESI directory protocol engine for the timing simulator.

This engine resolves each access against stable MESI states, computing the
critical-path latency of the coherence transaction it triggers (private hit,
chip-local L3 access, off-chip L4/global-directory access, invalidations and
downgrades of remote sharers, main-memory fills) and recording the traffic it
generates.  Commutative-update accesses are treated exactly like conventional
atomic read-modify-writes — which is precisely how the paper's baseline
benchmark implementations behave — so a single workload trace can be run under
MESI and MEUSI and compared directly.

Contention is modelled with per-line serialization at the directory: a
transaction that transfers ownership or invalidates sharers occupies the
line's home until it completes, so concurrent atomics to a hot line queue up.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.commutative import CommutativeOp
from repro.core.directory import DirectoryEntry
from repro.core.protocol import (
    SHAPE_CONFLICT,
    SHAPE_FAST,
    AccessOutcome,
    CoherenceProtocol,
)
from repro.core.states import LineMode, StableState
from repro.interconnect.messages import LinkScope, MessageType
from repro.sim.access import AccessType, MemoryAccess
from repro.sim.config import SystemConfig
from repro.sim.stats import CoreStats, LatencyBreakdown

#: Code-table twins used by the group-retirement loop (Python-int indexed).
from repro.sim.columnar import CODE_KIND, CODE_OP, CODE_VALUE_KIND, decode_value

_KIND_OF_CODE = tuple(int(kind) for kind in CODE_KIND)

#: Accesses materialized (ndarray slice -> Python list) per slot per refill in
#: the group-retirement merge; bounds peak list memory at a few KiB per core.
_FLEET_CHUNK = 512


@dataclass
class TransactionCost:
    """Latency components of one directory transaction."""

    breakdown: LatencyBreakdown
    #: Cycles the line's home stays busy after the request reaches it.
    home_occupancy: float
    invalidations: int = 0


class MesiProtocol(CoherenceProtocol):
    """Full-map directory MESI with the Table 1 four-level hierarchy."""

    name = "MESI"
    SUPPORTS_INLINE_FAST_PATH = True
    #: The batched columnar kernel may classify chunks against this engine's
    #: tables (the generic ``CoherenceProtocol.hot_mask`` implements the MESI
    #: family's rules; MEUSI and RMO inherit both flag and mask).
    SUPPORTS_BATCH_KERNEL = True
    HOT_COMMUTATIVE = "atomic"
    #: The group-retirement stage may retire stretches of this engine's slow
    #: accesses through :meth:`resolve_slow_batch` (flattened transactions,
    #: bit-identical to the scalar path).
    SUPPORTS_SLOW_BATCH = True

    #: Independence classification (mode x kind).  MESI folds commutative and
    #: remote updates into atomic RMWs, and every stable-mode transaction has
    #: a flattened twin, so all reachable pairs are fast; the update-only row
    #: is unreachable under plain MESI and marked conflict defensively.
    SLOW_SHAPE_TABLE = np.array(
        [
            [SHAPE_FAST] * 5,      # UNCACHED: cold fills / grants
            [SHAPE_FAST] * 5,      # EXCLUSIVE: downgrades / ownership transfer
            [SHAPE_FAST] * 5,      # READ_ONLY: joins / upgrades+invalidation
            [SHAPE_CONFLICT] * 5,  # UPDATE_ONLY: never entered by MESI
        ],
        dtype=np.uint8,
    )

    #: Per-sharer serialization when the home must invalidate several caches.
    PER_SHARER_INVAL_CYCLES = 2.0
    #: Directory bookkeeping occupancy for transactions with no remote action.
    LIGHT_OCCUPANCY = 2.0

    #: Hoisted constants for :meth:`resolve_slow_batch` (built on first use).
    _sb_consts: Optional[Tuple[Any, Any, Any, int]] = None
    #: Core-model constants, installed by the kernel via :meth:`slow_batch_begin`.
    _sb_core_params: Tuple[float, float, float] = (1.0, 0.0, 0.0)

    def __init__(self, config: SystemConfig, track_values: bool = True) -> None:
        super().__init__(config, track_values=track_values)
        #: Per-core stable state of each line resident in that core's caches.
        self.core_states: List[Dict[int, StableState]] = [
            {} for _ in range(config.n_cores)
        ]

    # ------------------------------------------------------------------ helpers

    def core_state(self, core_id: int, line_addr: int) -> StableState:
        return self.core_states[core_id].get(line_addr, StableState.INVALID)

    def _set_state(self, core_id: int, line_addr: int, state: StableState) -> None:
        # Every slow-path stable-state mutation funnels through here (the
        # simulator's inline hit paths write ``core_states`` directly, but
        # only for E->M upgrades, which no batch classification depends on).
        # When the batched kernel runs, it registers a set to learn which
        # (core, line) pairs a transaction touched so it can repair their
        # tag mirrors incrementally and invalidate chunk classifications.
        touched = self.touched_cores
        if touched is not None:
            touched.add((core_id, line_addr))
        if state is StableState.INVALID:
            self.core_states[core_id].pop(line_addr, None)
        else:
            self.core_states[core_id][line_addr] = state

    def _private_hit_latency(self, level) -> LatencyBreakdown:
        """Latency breakdown of a private hit (level 1/"L1" or 2/"L2")."""
        if level == "L1" or level == 1:
            return LatencyBreakdown(l1=self._l1_latency)
        return LatencyBreakdown(l1=self._l1_latency, l2=self._l2_latency)

    def _chip(self, core_id: int) -> int:
        return self._chip_of_core[core_id]

    # -------------------------------------------------------- eviction handling

    def _handle_private_eviction(self, core_id: int, line_addr: int) -> None:
        """A line fell out of a core's private caches (capacity eviction)."""
        state = self.core_state(core_id, line_addr)
        if state is StableState.INVALID:
            return
        chip = self._chip(core_id)
        if state is StableState.MODIFIED:
            # Dirty writeback to the chip's L3 (on-chip data message).
            self.interconnect.record_one(MessageType.DATA_WRITEBACK, LinkScope.ON_CHIP)
        else:
            # No silent drops: notify the directory with a control message.
            self.interconnect.record_one(MessageType.PUT_LINE, LinkScope.ON_CHIP)
        self._set_state(core_id, line_addr, StableState.INVALID)
        self.directory.remove_sharer(line_addr, core_id)
        self.directory.drop_if_uncached(line_addr)
        # Keep the line resident in the chip's L3 (inclusive hierarchy).
        self._l3_caches[chip].insert(line_addr)

    def _fill_private(self, core_id: int, line_addr: int) -> None:
        """Install a line in the core's private caches, handling victims."""
        victim = self.hierarchy.private_fill_victim(core_id, line_addr)
        if victim is not None:
            self._handle_private_eviction(core_id, victim)

    # ----------------------------------------------------- shared-level lookups

    def _ensure_shared_levels(self, requester_chip: int, line_addr: int, breakdown: LatencyBreakdown) -> None:
        """Charge L3/L4/memory latency for locating the line's data.

        The requester always consults its chip's L3 (and directory slice).  If
        the line is not on-chip it travels to the home L4 chip; if the L4 also
        misses, main memory supplies the data.  Fill the touched levels so
        subsequent accesses from this chip hit closer to the core.
        """
        breakdown.l3 += self._onchip_hop + self._l3_latency
        if self._l3_caches[requester_chip].lookup(line_addr) is not None:
            return
        # Off-chip to the home L4 chip (topology- and contention-aware).
        home_l4 = line_addr % self._n_l4_chips
        breakdown.offchip_network += self._l4_rt(
            requester_chip, home_l4, line_addr, self.current_time
        )
        breakdown.l4 += self._l4_latency
        self.interconnect.record_one(MessageType.GET_SHARED, LinkScope.OFF_CHIP)
        self.interconnect.record_one(MessageType.DATA_RESPONSE, LinkScope.OFF_CHIP)
        if self._l4_caches[home_l4].lookup(line_addr) is None:
            timing = self._memory.access(
                home_l4, self.current_time, self.config.line_bytes
            )
            breakdown.main_memory += timing.latency
            self._l4_caches[home_l4].insert(line_addr)
        self._l3_caches[requester_chip].insert(line_addr)

    # ------------------------------------------------- sharer invalidation cost

    def _invalidate_sharers(
        self,
        requester: int,
        line_addr: int,
        sharers: Set[int],
        breakdown: LatencyBreakdown,
        *,
        downgrade_to: Optional[StableState] = None,
        data_returned: bool = False,
    ) -> int:
        """Invalidate (or downgrade) every sharer except the requester.

        Returns the number of caches acted upon and charges the critical-path
        delay: the global directory sends invalidations to every chip with
        sharers in parallel, each chip invalidates its local caches through
        its L3, and acks flow back.  Cross-chip invalidations therefore cost
        an off-chip round trip plus a small per-sharer serialization term;
        chip-local ones cost an on-chip round trip.
        """
        victims = sorted(sharers - {requester})
        if not victims:
            return 0
        requester_chip = self._chip(requester)
        victim_chips = {self._chip(core) for core in victims}
        offchip_chips = {chip for chip in victim_chips if chip != requester_chip}

        inval_latency = 0.0
        if offchip_chips:
            # The global directory at the line's home L4 chip invalidates
            # every chip in parallel: the critical path is the slowest
            # L4 <-> chip round trip (all equal under the dancehall).
            home_l4 = line_addr % self._n_l4_chips
            now = self.current_time
            inval_latency += max(
                self._l4_control_rt(chip, home_l4, line_addr, now)
                for chip in offchip_chips
            )
            inval_latency += self._onchip_hop * 2
        else:
            inval_latency += self._onchip_hop * 2
        inval_latency += self._l2_latency
        inval_latency += self.PER_SHARER_INVAL_CYCLES * (len(victims) - 1)
        breakdown.l4_invalidations += inval_latency

        for core in victims:
            state = self.core_state(core, line_addr)
            scope = (
                LinkScope.OFF_CHIP
                if self._chip(core) != requester_chip
                else LinkScope.ON_CHIP
            )
            self.interconnect.record_one(MessageType.INVALIDATE, scope)
            if state is StableState.MODIFIED or data_returned:
                self.interconnect.record_one(MessageType.DATA_WRITEBACK, scope)
            else:
                self.interconnect.record_one(MessageType.ACK, scope)
            if downgrade_to is None:
                self.hierarchy.private_invalidate(core, line_addr)
                self._set_state(core, line_addr, StableState.INVALID)
                self.directory.remove_sharer(line_addr, core)
                self.stat_invalidations += 1
            else:
                self._set_state(core, line_addr, downgrade_to)
                self.stat_downgrades += 1
        return len(victims)

    # ------------------------------------------------------------- transactions

    def _serialize_at_home(
        self,
        line_addr: int,
        now: float,
        breakdown: LatencyBreakdown,
        occupancy: float,
        entry=None,
    ) -> None:
        """Queue behind any in-flight transaction for this line."""
        if entry is None:
            entry = self.directory.entry(line_addr)
        start = max(now, entry.busy_until)
        wait = start - now
        if wait > 0:
            breakdown.serialization += wait
        entry.busy_until = start + occupancy

    def _read_transaction(
        self, core_id: int, line_addr: int, now: float
    ) -> AccessOutcome:
        """GetS: obtain read permission (S, or E if unshared)."""
        outcome = AccessOutcome()
        breakdown = outcome.latency
        breakdown.l1 += self._l1_latency
        breakdown.l2 += self._l2_latency
        chip = self._chip(core_id)
        entry = self.directory.entry(line_addr)
        self.interconnect.record_one(MessageType.GET_SHARED, LinkScope.ON_CHIP)

        if entry.mode is LineMode.EXCLUSIVE:
            owner = entry.exclusive_owner()
            occupancy = self._downgrade_owner_for_read(
                core_id, owner, line_addr, breakdown
            )
            self._serialize_at_home(line_addr, now, breakdown, occupancy, entry)
            self.directory.clear_all_sharers(line_addr)
            self.directory.grant_shared(line_addr, owner)
            self._set_state(owner, line_addr, StableState.SHARED)
            entry = self.directory.grant_shared(line_addr, core_id)
            outcome.invalidations += 1
        else:
            self._ensure_shared_levels(chip, line_addr, breakdown)
            self._serialize_at_home(line_addr, now, breakdown, self.LIGHT_OCCUPANCY, entry)
            if entry.mode is LineMode.UNCACHED:
                # Unshared: grant Exclusive (the E optimisation of MESI).
                self.directory.grant_exclusive(line_addr, core_id)
                self._set_state(core_id, line_addr, StableState.EXCLUSIVE)
                self._fill_private(core_id, line_addr)
                self.interconnect.record_one(MessageType.DATA_RESPONSE, LinkScope.ON_CHIP)
                outcome.value = self._load_value(line_addr)
                return outcome
            self.directory.grant_shared(line_addr, core_id)

        self._set_state(core_id, line_addr, StableState.SHARED)
        self._fill_private(core_id, line_addr)
        self.interconnect.record_one(MessageType.DATA_RESPONSE, LinkScope.ON_CHIP)
        outcome.value = self._load_value(line_addr)
        return outcome

    def _downgrade_owner_for_read(
        self, requester: int, owner: int, line_addr: int, breakdown: LatencyBreakdown
    ) -> float:
        """Fetch data from the current exclusive owner, downgrading it to S."""
        requester_chip = self._chip(requester)
        owner_chip = self._chip(owner)
        breakdown.l3 += self._onchip_hop + self._l3_latency
        latency = self._l2_latency + 2 * self._onchip_hop
        if owner_chip != requester_chip:
            transfer = self._chip_rt(requester_chip, owner_chip, self.current_time)
            latency += transfer
            breakdown.offchip_network += transfer
            breakdown.l4 += self._l4_latency
            scope = LinkScope.OFF_CHIP
        else:
            scope = LinkScope.ON_CHIP
        breakdown.l4_invalidations += latency
        self.interconnect.record_one(MessageType.DOWNGRADE, scope)
        self.interconnect.record_one(MessageType.DATA_WRITEBACK, scope)
        self.stat_downgrades += 1
        self._l3_caches[requester_chip].insert(line_addr)
        return latency

    def _write_transaction(
        self,
        core_id: int,
        line_addr: int,
        now: float,
        *,
        needs_data: bool,
    ) -> AccessOutcome:
        """GetX/Upgrade: obtain exclusive (M) permission."""
        outcome = AccessOutcome()
        breakdown = outcome.latency
        breakdown.l1 += self._l1_latency
        breakdown.l2 += self._l2_latency
        chip = self._chip(core_id)
        entry = self.directory.entry(line_addr)
        self.interconnect.record_one(MessageType.GET_EXCLUSIVE, LinkScope.ON_CHIP)

        sharers = entry.sharers
        occupancy = self.LIGHT_OCCUPANCY

        if entry.mode is LineMode.EXCLUSIVE and entry.exclusive_owner() != core_id:
            owner = entry.exclusive_owner()
            occupancy = self._downgrade_owner_for_read(core_id, owner, line_addr, breakdown)
            self.hierarchy.private_invalidate(owner, line_addr)
            self._set_state(owner, line_addr, StableState.INVALID)
            self.stat_invalidations += 1
            outcome.invalidations += 1
        elif (entry.mode is LineMode.READ_ONLY or entry.mode is LineMode.UPDATE_ONLY) and (
            len(sharers) > 1 or (sharers and core_id not in sharers)
        ):
            self._ensure_shared_levels(chip, line_addr, breakdown)
            count = self._invalidate_sharers(core_id, line_addr, set(sharers), breakdown)
            outcome.invalidations += count
            occupancy = breakdown.l4_invalidations + self.LIGHT_OCCUPANCY
        else:
            if needs_data and self.core_state(core_id, line_addr) is StableState.INVALID:
                self._ensure_shared_levels(chip, line_addr, breakdown)
            occupancy = max(self.LIGHT_OCCUPANCY, breakdown.offchip_network + breakdown.l4)

        self._serialize_at_home(line_addr, now, breakdown, occupancy, entry)
        self.directory.clear_all_sharers(line_addr)
        self.directory.grant_exclusive(line_addr, core_id)
        self._set_state(core_id, line_addr, StableState.MODIFIED)
        self._fill_private(core_id, line_addr)
        self.interconnect.record_one(MessageType.DATA_RESPONSE, LinkScope.ON_CHIP)
        return outcome

    # ------------------------------------------------------------ value helpers

    def _load_value(self, line_addr: int):
        if not self.track_values:
            return None
        return None  # Line-level loads have word granularity handled by callers.

    def _functional_load(self, access: MemoryAccess):
        if not self.track_values:
            return None
        return self.memory_image.get(access.address, 0)

    def _functional_store(self, access: MemoryAccess) -> None:
        if self.track_values and access.value is not None:
            self.memory_image[access.address] = access.value

    def _functional_update(self, access: MemoryAccess) -> None:
        if not self.track_values or access.op is None or access.value is None:
            return
        current = self.memory_image.get(access.address, access.op.identity)
        self.memory_image[access.address] = access.op.apply(current, access.value)

    # --------------------------------------------------------------- main entry

    def access(self, core_id: int, access: MemoryAccess, now: float) -> AccessOutcome:
        result = self.access_hot(core_id, access, now)
        if result.__class__ is int:
            outcome = AccessOutcome(private_hit=True)
            outcome.latency = self._private_hit_latency(result)
            outcome.value = self._hit_value(access)
            return outcome
        return result

    def access_hot(self, core_id: int, access: MemoryAccess, now: float):
        """Resolve one access; private hits return just the hit level (1/2).

        This is the simulator's per-access entry point.  The private-hit fast
        path performs the same lookups, LRU refreshes, state transitions, and
        functional updates as the transaction path's hit handling used to,
        but skips every allocation (no outcome, no breakdown): the caller
        charges the fixed L1/L2 hit latency itself.
        """
        line_addr = access.address >> self._line_shift
        access_type = access.access_type
        # MESI has no update-only support: commutative and remote updates are
        # executed as conventional atomic read-modify-writes.
        if (
            access_type is AccessType.COMMUTATIVE_UPDATE
            or access_type is AccessType.REMOTE_UPDATE
        ):
            access_type = AccessType.ATOMIC_RMW

        states = self.core_states[core_id]
        state = states.get(line_addr)
        level = self._private_level(core_id, line_addr)

        if level and state is not None:
            if access_type is AccessType.LOAD:
                # repro-lint: disable=P203(shared MESI-family fast path also services MEUSI U lines via inheritance; plain MESI never reaches this state)
                if state is not StableState.UPDATE:  # S/E/M can satisfy a load
                    return level
            elif (
                state is StableState.MODIFIED or state is StableState.EXCLUSIVE
            ):  # store or atomic with write permission
                states[line_addr] = StableState.MODIFIED
                if access_type is AccessType.STORE:
                    if self.track_values and access.value is not None:
                        self.memory_image[access.address] = access.value
                else:
                    self._functional_update(access)
                return level

        return self.resolve_slow(core_id, access, line_addr, state, level, now)

    def resolve_slow(
        self,
        core_id: int,
        access: MemoryAccess,
        line_addr: int,
        state: Optional[StableState],
        level,
        now: float,
    ) -> AccessOutcome:
        if level is None:
            self._private_level(core_id, line_addr)
        access_type = access.access_type
        if (
            access_type is AccessType.COMMUTATIVE_UPDATE
            or access_type is AccessType.REMOTE_UPDATE
        ):
            access_type = AccessType.ATOMIC_RMW
        self.current_time = now
        return self._access_slow(core_id, access, access_type, line_addr, state, now)

    # ------------------------------------------------- group retirement (batch)

    def slow_batch_begin(self, cpi: float, atomic_overhead: float, commutative_overhead: float) -> None:
        """Receive the core-model constants the retirement loop charges."""
        self._sb_core_params = (cpi, atomic_overhead, commutative_overhead)

    def _slow_batch_consts(self) -> Tuple[Any, Any, Any, int]:
        """Hoisted per-run constants for :meth:`resolve_slow_batch`."""
        consts = self._sb_consts
        if consts is None:
            size_of = self.interconnect._size_of
            labels = {
                key: (msg_type.label, size_of[msg_type.label])
                for key, msg_type in (
                    ("gs", MessageType.GET_SHARED),
                    ("gx", MessageType.GET_EXCLUSIVE),
                    ("gu", MessageType.GET_UPDATE),
                    ("dr", MessageType.DATA_RESPONSE),
                    ("dw", MessageType.DATA_WRITEBACK),
                    ("dg", MessageType.DOWNGRADE),
                    ("inv", MessageType.INVALIDATE),
                    ("ack", MessageType.ACK),
                    ("gnd", MessageType.GRANT_NO_DATA),
                )
            }
            consts = (
                labels,
                self.interconnect.l4_round_trip_table,
                self.interconnect.chip_transfer_table,
                self.config.line_bytes,
            )
            self._sb_consts = consts
        return consts

    def resolve_slow_batch(
        self,
        slot_cores: List[int],
        slot_codes: List[Any],
        slot_addrs: List[Any],
        slot_gaps: List[Any],
        slot_deltas: List[Any],
        slot_cursor: List[int],
        slot_limit: List[int],
        slot_clock: List[float],
        slot_stats: List[CoreStats],
        slot_dirty: List[bool],
        streak_cap: int,
        max_retire: int,
    ) -> Tuple[int, int, int]:
        """Group-retire the pending accesses of many cores in one merged call.

        See :meth:`CoherenceProtocol.slow_batch_ready` for the contract.  One
        slot per participating core: ``slot_codes`` / ``slot_addrs`` /
        ``slot_gaps`` / ``slot_deltas`` hold the full per-core trace columns,
        ``slot_cursor`` / ``slot_limit`` the half-open index range still to
        retire, and ``slot_clock`` the core clock at the cursor.  The loop
        replays the exact scalar ``(clock, core_id)`` heap order across all
        slots with a k-way merge — each step retires one access of the
        earliest slot, so the interleaving is bit-identical to the scalar
        heap by construction — while amortizing the per-event interpreter
        cost (window re-extraction, classification, mirror repair, heap
        churn) over whole stretches of the merge.  Hits retire inline with
        the same hand-duplicated probe as the scalar loops;
        independence-classified slow transactions retire flattened (same
        state mutations, same statistics, same float-operation sequences).

        A slot whose head access is a true conflict (cross-op update or
        demand on an update-only line — a reduction trigger — or any update
        under a ``comm_never`` engine) **parks before any mutation**: its
        pending event becomes a bound no other slot may retire past, and the
        merge returns once that event is the earliest remaining, leaving it
        for the caller's exact one-at-a-time path.  The merge also returns
        after ``max_retire`` retirements (so the caller's bail heuristic
        keeps sampling wall-clock) or once ``streak_cap`` consecutive hits
        retire (hit-dense stretches belong to the vectorized window path).

        ``slot_cursor`` and ``slot_clock`` are updated in place;
        ``slot_dirty[s]`` is set when slot ``s``'s private-cache membership
        changed (L2 promotions, fills, evictions), i.e. when its tag mirror
        needs a rebuild.  Returns ``(n_retired, n_slow, n_parked)``.
        """
        labels, l4_rt_table, chip_rt_table, line_bytes = self._slow_batch_consts()
        cpi, atomic_overhead, commutative_overhead = self._sb_core_params
        # MEUSI-only members (delta buffers, update statistics) are reached
        # solely under ``comm_local``; the Any view keeps the shared loop in
        # one place without widening the MESI class surface.
        sp: Any = self
        kind_of = _KIND_OF_CODE
        code_op = CODE_OP
        code_vk = CODE_VALUE_KIND
        line_shift = self._line_shift
        chip_of = self._chip_of_core
        onchip = self._onchip_hop
        l1_lat = self._l1_latency
        l2_lat = self._l2_latency
        l3_lat = self._l3_latency
        l4_lat = self._l4_latency
        l1_hit_total = l1_lat + 0.0
        l2_hit_total = l1_lat + l2_lat + 0.0
        light = self.LIGHT_OCCUPANCY
        per_sharer = self.PER_SHARER_INVAL_CYCLES
        n_l4 = self._n_l4_chips
        comm_local = self.HOT_COMMUTATIVE == "local"
        comm_never = self.HOT_COMMUTATIVE == "never"
        track = self.track_values
        image = self.memory_image
        dir_entries = self.directory._entries
        core_states = self.core_states
        l3_caches = self._l3_caches
        l4_caches = self._l4_caches
        memory = self._memory
        hierarchy = self.hierarchy
        fill_victim = hierarchy.private_fill_victim
        private_invalidate = hierarchy.private_invalidate
        handle_eviction = self._handle_private_eviction
        traffic = self.interconnect.traffic
        mbt = traffic.messages_by_type
        bbt = traffic.bytes_by_type
        touched = self.touched_cores
        if touched is None:
            touched = set()
        l_gs, s_gs = labels["gs"]
        l_gx, s_gx = labels["gx"]
        l_gu, s_gu = labels["gu"]
        l_dr, s_dr = labels["dr"]
        l_dw, s_dw = labels["dw"]
        l_dg, s_dg = labels["dg"]
        l_inv, s_inv = labels["inv"]
        l_ack, s_ack = labels["ack"]
        l_gnd, s_gnd = labels["gnd"]
        MOD = StableState.MODIFIED
        EXC = StableState.EXCLUSIVE
        SHR = StableState.SHARED
        # repro-lint: disable=P203(shared MESI-family retirement loop also services MEUSI U shapes via inheritance, mirroring access_hot; plain MESI never reaches those branches)
        UPD = StableState.UPDATE
        M_EXCLUSIVE = LineMode.EXCLUSIVE
        M_READ_ONLY = LineMode.READ_ONLY
        M_UNCACHED = LineMode.UNCACHED
        M_UPDATE_ONLY = LineMode.UPDATE_ONLY

        # -- per-slot object hoists (indexed by merge slot) --------------------
        n_slots = len(slot_cores)
        a_states = [core_states[cid] for cid in slot_cores]
        a_l1 = [self._l1_caches[cid] for cid in slot_cores]
        a_l2 = [self._l2_caches[cid] for cid in slot_cores]
        a_l1_sets = [l1.probe_parts()[0] for l1 in a_l1]
        a_l1_nsets = [l1.probe_parts()[1] for l1 in a_l1]
        a_l2_sets = [l2.probe_parts()[0] for l2 in a_l2]
        a_l2_nsets = [l2.probe_parts()[1] for l2 in a_l2]
        a_chip = [chip_of[cid] for cid in slot_cores]
        a_slat = [stats.latency for stats in slot_stats]
        # Chunked column materialization (ndarray -> list) per slot, on demand.
        a_codes: List[Any] = [None] * n_slots
        a_addrs: List[Any] = [None] * n_slots
        a_gaps: List[Any] = [None] * n_slots
        a_deltas: List[Any] = [None] * n_slots
        a_base = [0] * n_slots
        a_cend = [0] * n_slots

        heappush = heapq.heappush
        heappop = heapq.heappop
        heap = [
            (slot_clock[s], slot_cores[s], s)
            for s in range(n_slots)
            if slot_cursor[s] < slot_limit[s]
        ]
        heapq.heapify(heap)

        pk_clock = float("inf")  # earliest parked (conflict) event
        pk_cid = -1
        retired = 0
        n_slow = 0
        n_parked = 0
        streak = 0

        while heap:
            clock, cid, s = heappop(heap)
            if clock > pk_clock or (clock == pk_clock and cid > pk_cid):
                # The parked conflict is the next event in heap order: stop
                # and hand it back for the exact one-at-a-time path.
                heappush(heap, (clock, cid, s))
                break
            if heap:
                head = heap[0]
                nxt_clock = head[0]
                nxt_cid = head[1]
            else:
                nxt_clock = pk_clock
                nxt_cid = pk_cid
            core_id = cid
            cursor = slot_cursor[s]
            limit = slot_limit[s]
            stats = slot_stats[s]
            slat = a_slat[s]
            states = a_states[s]
            l1 = a_l1[s]
            l2 = a_l2[s]
            l1_sets = a_l1_sets[s]
            l1_nsets = a_l1_nsets[s]
            l2_sets = a_l2_sets[s]
            l2_nsets = a_l2_nsets[s]
            chip = a_chip[s]
            codes_l = a_codes[s]
            addrs_l = a_addrs[s]
            gaps_l = a_gaps[s]
            deltas_l = a_deltas[s]
            base = a_base[s]
            cend = a_cend[s]

            while True:
                if cursor >= cend:
                    if cursor >= limit:
                        # Slot exhausted (phase limit): leaves the merge.
                        slot_cursor[s] = cursor
                        slot_clock[s] = clock
                        break
                    base = cursor
                    cend = cursor + _FLEET_CHUNK
                    if cend > limit:
                        cend = limit
                    codes_l = a_codes[s] = slot_codes[s][base:cend].tolist()
                    addrs_l = a_addrs[s] = slot_addrs[s][base:cend].tolist()
                    gaps_l = a_gaps[s] = slot_gaps[s][base:cend].tolist()
                    if track:
                        deltas_l = a_deltas[s] = slot_deltas[s][base:cend].tolist()
                    a_base[s] = base
                    a_cend[s] = cend
                i = cursor - base
                code = codes_l[i]
                kind = kind_of[code]
                address = addrs_l[i]
                line_addr = address >> line_shift
                state = states.get(line_addr)
                is_comm = kind >= 3

                # -- classification: a true conflict parks before any mutation
                if is_comm:
                    if comm_never:
                        park = True
                    elif comm_local:
                        entry = dir_entries.get(line_addr)
                        # Cross-op update: full reduction (conflict).
                        park = (
                            entry is not None
                            and entry.mode is M_UPDATE_ONLY
                            and entry.op is not code_op[code]
                        )
                    else:
                        park = False
                elif comm_local:
                    entry = dir_entries.get(line_addr)
                    # Demand on an update-only line: reduction (conflict).
                    park = (
                        entry is not None and entry.mode is M_UPDATE_ONLY
                    ) or state is UPD
                else:
                    park = False
                if park:
                    slot_cursor[s] = cursor
                    slot_clock[s] = clock
                    n_parked += 1
                    if clock < pk_clock or (clock == pk_clock and cid < pk_cid):
                        pk_clock = clock
                        pk_cid = cid
                    break

                gap = gaps_l[i]
                if kind == 0:
                    overhead = 0.0
                    stats.loads += 1
                elif kind == 1:
                    overhead = 0.0
                    stats.stores += 1
                elif kind == 2:
                    overhead = atomic_overhead
                    stats.atomics += 1
                elif kind == 3:
                    overhead = commutative_overhead
                    stats.commutative_updates += 1
                else:
                    overhead = commutative_overhead
                    stats.remote_updates += 1
                think = gap * cpi
                issue = clock + think

                # -- inline private probe (same hand-duplicated sequence as the
                # scalar loops; see CoherenceProtocol._private_level's WARNING)
                level = None
                hit_level = 0
                if state is not None and (True if is_comm else state is not UPD):
                    cache_set = l1_sets.get(line_addr % l1_nsets)
                    info = cache_set.get(line_addr) if cache_set is not None else None
                    if info is not None:
                        l1.hits += 1
                        l1._tick = tick = l1._tick + 1
                        info.last_use = tick
                        level = 1
                    else:
                        l1.misses += 1
                        cache_set = l2_sets.get(line_addr % l2_nsets)
                        info = cache_set.get(line_addr) if cache_set is not None else None
                        if info is not None:
                            l2.hits += 1
                            l2._tick = tick = l2._tick + 1
                            info.last_use = tick
                            l1.insert(line_addr)
                            slot_dirty[s] = True
                            level = 2
                        else:
                            l2.misses += 1
                            level = 0
                    if level:
                        if kind == 0:
                            if state is not UPD:
                                hit_level = level
                        elif state is MOD or state is EXC:
                            states[line_addr] = MOD
                            if track:
                                value = decode_value(code_vk[code], deltas_l[i])
                                if value is not None:
                                    if kind == 1:
                                        image[address] = value
                                    else:
                                        op = code_op[code]
                                        if op is not None:
                                            current = image.get(address, op.identity)
                                            image[address] = op.apply(current, value)
                            if is_comm and comm_local:
                                sp.stat_local_updates += 1
                            hit_level = level
                        elif state is UPD and is_comm and comm_local:
                            entry = dir_entries.get(line_addr)
                            op = code_op[code]
                            if op is not None and entry is not None and entry.op is op:
                                if track:
                                    value = decode_value(code_vk[code], deltas_l[i])
                                    if value is not None:
                                        sp._buffer_for(core_id, line_addr, op).update(
                                            address, value
                                        )
                                sp.stat_local_updates += 1
                                hit_level = level

                if hit_level:
                    slat.l1 += l1_lat
                    if hit_level == 1:
                        latency = l1_hit_total
                    else:
                        slat.l2 += l2_lat
                        latency = l2_hit_total
                    stats.l1_hits += 1
                    stats.accesses += 1
                    stats.compute_cycles += think + overhead
                    stats.memory_cycles += latency
                    clock = issue + overhead + latency
                    cursor += 1
                    retired += 1
                    streak += 1
                    if retired >= max_retire or streak >= streak_cap:
                        slot_cursor[s] = cursor
                        slot_clock[s] = clock
                        return retired, n_slow, n_parked
                    if clock > nxt_clock or (clock == nxt_clock and cid > nxt_cid):
                        slot_cursor[s] = cursor
                        slot_clock[s] = clock
                        heappush(heap, (clock, cid, s))
                        break
                    continue

                # ---------------------------------------------------- slow shapes
                self.current_time = issue
                slot_dirty[s] = True
                if level is None:
                    # Not probed yet (untracked state / update-state demand):
                    # replicate resolve_slow's exactly-once probe.
                    cache_set = l1_sets.get(line_addr % l1_nsets)
                    info = cache_set.get(line_addr) if cache_set is not None else None
                    if info is not None:
                        l1.hits += 1
                        l1._tick = tick = l1._tick + 1
                        info.last_use = tick
                    else:
                        l1.misses += 1
                        cache_set = l2_sets.get(line_addr % l2_nsets)
                        info = cache_set.get(line_addr) if cache_set is not None else None
                        if info is not None:
                            l2.hits += 1
                            l2._tick = tick = l2._tick + 1
                            info.last_use = tick
                            l1.insert(line_addr)
                        else:
                            l2.misses += 1

                b1 = 0.0 + l1_lat
                b2 = 0.0 + l2_lat
                b3 = 0.0
                b4 = 0.0  # offchip_network
                b5 = 0.0  # l4
                b6 = 0.0  # l4_invalidations
                b7 = 0.0  # main_memory
                b8 = 0.0  # serialization
                entry = dir_entries.get(line_addr)
                if entry is None:
                    entry = DirectoryEntry(line_addr=line_addr)
                    dir_entries[line_addr] = entry
                mode = entry.mode
                value = (
                    decode_value(code_vk[code], deltas_l[i])
                    if (track and kind != 0)
                    else None
                )

                if is_comm and comm_local:
                    # ---------------- MEUSI GetU shapes (U1-U5; U6 parked) ------
                    op = code_op[code]
                    traffic.on_chip_bytes += s_gu
                    mbt[l_gu] += 1
                    bbt[l_gu] += s_gu
                    sp.stat_update_grants += 1
                    if mode is M_UNCACHED:
                        # U1: unshared, grant M directly.
                        b3, b4, b5, b7 = self._sb_ensure_shared(
                            chip, line_addr, issue, b3, b4, b5, b7,
                            l3_caches, l4_caches, memory, traffic, mbt, bbt,
                            onchip, l3_lat, l4_lat, n_l4, l4_rt_table, line_bytes,
                            l_gs, s_gs, l_dr, s_dr,
                        )
                        start = entry.busy_until
                        if issue > start:
                            start = issue
                        wait = start - issue
                        if wait > 0:
                            b8 += wait
                        entry.busy_until = start + light
                        entry.mode = M_EXCLUSIVE
                        entry.sharers = {core_id}
                        entry.op = None
                        touched.add((core_id, line_addr))
                        states[line_addr] = MOD
                        victim = fill_victim(core_id, line_addr)
                        if victim is not None:
                            handle_eviction(core_id, victim)
                        traffic.on_chip_bytes += s_dr
                        mbt[l_dr] += 1
                        bbt[l_dr] += s_dr
                        if track and value is not None:
                            current = image.get(address, op.identity)
                            image[address] = op.apply(current, value)
                    elif mode is M_EXCLUSIVE:
                        owner = next(iter(entry.sharers))
                        if owner == core_id:
                            # U2: our own copy absorbs the update in M.
                            touched.add((core_id, line_addr))
                            states[line_addr] = MOD
                            if track and value is not None:
                                current = image.get(address, op.identity)
                                image[address] = op.apply(current, value)
                        else:
                            # U3: downgrade the owner M->U; both become updaters.
                            owner_chip = chip_of[owner]
                            lat = l2_lat + 2 * onchip
                            if owner_chip != chip:
                                transfer = chip_rt_table[chip][owner_chip]
                                lat += transfer
                                b4 += transfer
                                b5 += l4_lat
                                traffic.off_chip_bytes += s_dg + s_dw
                            else:
                                traffic.on_chip_bytes += s_dg + s_dw
                            b6 += lat
                            mbt[l_dg] += 1
                            bbt[l_dg] += s_dg
                            mbt[l_dw] += 1
                            bbt[l_dw] += s_dw
                            start = entry.busy_until
                            if issue > start:
                                start = issue
                            wait = start - issue
                            if wait > 0:
                                b8 += wait
                            entry.busy_until = start + lat
                            self.stat_downgrades += 1
                            l3_caches[owner_chip].insert(line_addr)
                            entry.mode = M_UPDATE_ONLY
                            entry.sharers = {owner, core_id}
                            entry.op = op
                            touched.add((owner, line_addr))
                            core_states[owner][line_addr] = UPD
                            touched.add((core_id, line_addr))
                            states[line_addr] = UPD
                            sp._buffer_for(owner, line_addr, op)
                            victim = fill_victim(core_id, line_addr)
                            if victim is not None:
                                handle_eviction(core_id, victim)
                            traffic.on_chip_bytes += s_gnd
                            mbt[l_gnd] += 1
                            bbt[l_gnd] += s_gnd
                            if track and value is not None:
                                sp._buffer_for(core_id, line_addr, op).update(
                                    address, value
                                )
                    elif mode is M_READ_ONLY:
                        # U4: invalidate all readers, then grant update-only.
                        b3, b4, b5, b7 = self._sb_ensure_shared(
                            chip, line_addr, issue, b3, b4, b5, b7,
                            l3_caches, l4_caches, memory, traffic, mbt, bbt,
                            onchip, l3_lat, l4_lat, n_l4, l4_rt_table, line_bytes,
                            l_gs, s_gs, l_dr, s_dr,
                        )
                        victims = sorted(entry.sharers - {core_id})
                        if victims:
                            b6 = self._sb_invalidate(
                                core_id, chip, line_addr, entry, victims, b6,
                                core_states, private_invalidate, touched,
                                traffic, mbt, bbt, chip_of,
                                onchip, l2_lat, per_sharer, n_l4, l4_rt_table,
                                l_inv, s_inv, l_ack, s_ack, l_dw, s_dw,
                            )
                        occupancy = b6 + light
                        start = entry.busy_until
                        if issue > start:
                            start = issue
                        wait = start - issue
                        if wait > 0:
                            b8 += wait
                        entry.busy_until = start + occupancy
                        entry.mode = M_UPDATE_ONLY
                        entry.sharers = {core_id}
                        entry.op = op
                        touched.add((core_id, line_addr))
                        states[line_addr] = UPD
                        victim = fill_victim(core_id, line_addr)
                        if victim is not None:
                            handle_eviction(core_id, victim)
                        traffic.on_chip_bytes += s_gnd
                        mbt[l_gnd] += 1
                        bbt[l_gnd] += s_gnd
                        if track and value is not None:
                            sp._buffer_for(core_id, line_addr, op).update(address, value)
                    else:
                        # U5: same-op update-only join (cross-op parked above).
                        b3, b4, b5, b7 = self._sb_ensure_shared(
                            chip, line_addr, issue, b3, b4, b5, b7,
                            l3_caches, l4_caches, memory, traffic, mbt, bbt,
                            onchip, l3_lat, l4_lat, n_l4, l4_rt_table, line_bytes,
                            l_gs, s_gs, l_dr, s_dr,
                        )
                        start = entry.busy_until
                        if issue > start:
                            start = issue
                        wait = start - issue
                        if wait > 0:
                            b8 += wait
                        entry.busy_until = start + light
                        entry.sharers.add(core_id)
                        touched.add((core_id, line_addr))
                        states[line_addr] = UPD
                        victim = fill_victim(core_id, line_addr)
                        if victim is not None:
                            handle_eviction(core_id, victim)
                        traffic.on_chip_bytes += s_gnd
                        mbt[l_gnd] += 1
                        bbt[l_gnd] += s_gnd
                        if track and value is not None:
                            sp._buffer_for(core_id, line_addr, op).update(address, value)
                elif kind == 0:
                    # ------------------------ GetS (R1 downgrade / R2 / R3) ------
                    traffic.on_chip_bytes += s_gs
                    mbt[l_gs] += 1
                    bbt[l_gs] += s_gs
                    if mode is M_EXCLUSIVE:
                        owner = next(iter(entry.sharers))
                        owner_chip = chip_of[owner]
                        b3 += onchip + l3_lat
                        lat = l2_lat + 2 * onchip
                        if owner_chip != chip:
                            transfer = chip_rt_table[chip][owner_chip]
                            lat += transfer
                            b4 += transfer
                            b5 += l4_lat
                            traffic.off_chip_bytes += s_dg + s_dw
                        else:
                            traffic.on_chip_bytes += s_dg + s_dw
                        b6 += lat
                        mbt[l_dg] += 1
                        bbt[l_dg] += s_dg
                        mbt[l_dw] += 1
                        bbt[l_dw] += s_dw
                        self.stat_downgrades += 1
                        l3_caches[chip].insert(line_addr)
                        start = entry.busy_until
                        if issue > start:
                            start = issue
                        wait = start - issue
                        if wait > 0:
                            b8 += wait
                        entry.busy_until = start + lat
                        entry.mode = M_READ_ONLY
                        entry.sharers = {owner}
                        entry.op = None
                        touched.add((owner, line_addr))
                        core_states[owner][line_addr] = SHR
                        entry.sharers.add(core_id)
                    else:
                        b3, b4, b5, b7 = self._sb_ensure_shared(
                            chip, line_addr, issue, b3, b4, b5, b7,
                            l3_caches, l4_caches, memory, traffic, mbt, bbt,
                            onchip, l3_lat, l4_lat, n_l4, l4_rt_table, line_bytes,
                            l_gs, s_gs, l_dr, s_dr,
                        )
                        start = entry.busy_until
                        if issue > start:
                            start = issue
                        wait = start - issue
                        if wait > 0:
                            b8 += wait
                        entry.busy_until = start + light
                        if mode is M_UNCACHED:
                            # R2: unshared read is granted Exclusive.
                            entry.mode = M_EXCLUSIVE
                            entry.sharers = {core_id}
                            entry.op = None
                            touched.add((core_id, line_addr))
                            states[line_addr] = EXC
                            victim = fill_victim(core_id, line_addr)
                            if victim is not None:
                                handle_eviction(core_id, victim)
                            traffic.on_chip_bytes += s_dr
                            mbt[l_dr] += 1
                            bbt[l_dr] += s_dr
                            slat.l1 += b1
                            slat.l2 += b2
                            slat.l3 += b3
                            slat.offchip_network += b4
                            slat.l4 += b5
                            slat.l4_invalidations += b6
                            slat.main_memory += b7
                            slat.serialization += b8
                            total = b1 + b2 + b3 + b4 + b5 + b6 + b7 + b8
                            stats.accesses += 1
                            stats.compute_cycles += think + overhead
                            stats.memory_cycles += total
                            clock = issue + overhead + total
                            cursor += 1
                            retired += 1
                            n_slow += 1
                            streak = 0
                            if retired >= max_retire:
                                slot_cursor[s] = cursor
                                slot_clock[s] = clock
                                return retired, n_slow, n_parked
                            if clock > nxt_clock or (
                                clock == nxt_clock and cid > nxt_cid
                            ):
                                slot_cursor[s] = cursor
                                slot_clock[s] = clock
                                heappush(heap, (clock, cid, s))
                                break
                            continue
                        # R3: read-only join.
                        entry.mode = M_READ_ONLY
                        entry.sharers.add(core_id)
                        entry.op = None
                    touched.add((core_id, line_addr))
                    states[line_addr] = SHR
                    victim = fill_victim(core_id, line_addr)
                    if victim is not None:
                        handle_eviction(core_id, victim)
                    traffic.on_chip_bytes += s_dr
                    mbt[l_dr] += 1
                    bbt[l_dr] += s_dr
                else:
                    # --------------- GetX / Upgrade (W1 / W2 / cold-upgrade) -----
                    traffic.on_chip_bytes += s_gx
                    mbt[l_gx] += 1
                    bbt[l_gx] += s_gx
                    if mode is M_EXCLUSIVE and next(iter(entry.sharers)) != core_id:
                        # W1: ownership transfer from the current owner.
                        owner = next(iter(entry.sharers))
                        owner_chip = chip_of[owner]
                        b3 += onchip + l3_lat
                        lat = l2_lat + 2 * onchip
                        if owner_chip != chip:
                            transfer = chip_rt_table[chip][owner_chip]
                            lat += transfer
                            b4 += transfer
                            b5 += l4_lat
                            traffic.off_chip_bytes += s_dg + s_dw
                        else:
                            traffic.on_chip_bytes += s_dg + s_dw
                        b6 += lat
                        mbt[l_dg] += 1
                        bbt[l_dg] += s_dg
                        mbt[l_dw] += 1
                        bbt[l_dw] += s_dw
                        self.stat_downgrades += 1
                        l3_caches[chip].insert(line_addr)
                        occupancy = lat
                        private_invalidate(owner, line_addr)
                        touched.add((owner, line_addr))
                        core_states[owner].pop(line_addr, None)
                        self.stat_invalidations += 1
                    elif mode is M_READ_ONLY and (
                        len(entry.sharers) > 1
                        or (entry.sharers and core_id not in entry.sharers)
                    ):
                        # W2: invalidate every reader, then take ownership.
                        b3, b4, b5, b7 = self._sb_ensure_shared(
                            chip, line_addr, issue, b3, b4, b5, b7,
                            l3_caches, l4_caches, memory, traffic, mbt, bbt,
                            onchip, l3_lat, l4_lat, n_l4, l4_rt_table, line_bytes,
                            l_gs, s_gs, l_dr, s_dr,
                        )
                        victims = sorted(entry.sharers - {core_id})
                        b6 = self._sb_invalidate(
                            core_id, chip, line_addr, entry, victims, b6,
                            core_states, private_invalidate, touched,
                            traffic, mbt, bbt, chip_of,
                            onchip, l2_lat, per_sharer, n_l4, l4_rt_table,
                            l_inv, s_inv, l_ack, s_ack, l_dw, s_dw,
                        )
                        occupancy = b6 + light
                    else:
                        # W3/cold: upgrade in place or fetch-and-own.
                        if state is None:
                            b3, b4, b5, b7 = self._sb_ensure_shared(
                                chip, line_addr, issue, b3, b4, b5, b7,
                                l3_caches, l4_caches, memory, traffic, mbt, bbt,
                                onchip, l3_lat, l4_lat, n_l4, l4_rt_table, line_bytes,
                                l_gs, s_gs, l_dr, s_dr,
                            )
                        occupancy = b4 + b5
                        if occupancy < light:
                            occupancy = light
                    start = entry.busy_until
                    if issue > start:
                        start = issue
                    wait = start - issue
                    if wait > 0:
                        b8 += wait
                    entry.busy_until = start + occupancy
                    entry.mode = M_EXCLUSIVE
                    entry.sharers = {core_id}
                    entry.op = None
                    touched.add((core_id, line_addr))
                    states[line_addr] = MOD
                    victim = fill_victim(core_id, line_addr)
                    if victim is not None:
                        handle_eviction(core_id, victim)
                    traffic.on_chip_bytes += s_dr
                    mbt[l_dr] += 1
                    bbt[l_dr] += s_dr
                    if track and value is not None:
                        if kind == 1:
                            image[address] = value
                        else:
                            op = code_op[code]
                            if op is not None:
                                current = image.get(address, op.identity)
                                image[address] = op.apply(current, value)

                slat.l1 += b1
                slat.l2 += b2
                slat.l3 += b3
                slat.offchip_network += b4
                slat.l4 += b5
                slat.l4_invalidations += b6
                slat.main_memory += b7
                slat.serialization += b8
                total = b1 + b2 + b3 + b4 + b5 + b6 + b7 + b8
                stats.accesses += 1
                stats.compute_cycles += think + overhead
                stats.memory_cycles += total
                clock = issue + overhead + total
                cursor += 1
                retired += 1
                n_slow += 1
                streak = 0
                if retired >= max_retire:
                    slot_cursor[s] = cursor
                    slot_clock[s] = clock
                    return retired, n_slow, n_parked
                if clock > nxt_clock or (clock == nxt_clock and cid > nxt_cid):
                    slot_cursor[s] = cursor
                    slot_clock[s] = clock
                    heappush(heap, (clock, cid, s))
                    break
                # Still the earliest slot: keep retiring its trace in order.

        return retired, n_slow, n_parked

    def _sb_ensure_shared(
        self, chip: int, line_addr: int, now: float,
        b3: float, b4: float, b5: float, b7: float,
        l3_caches: Any, l4_caches: Any, memory: Any, traffic: Any,
        mbt: Any, bbt: Any,
        onchip: float, l3_lat: float, l4_lat: float, n_l4: int,
        l4_rt_table: Any, line_bytes: int,
        l_gs: Any, s_gs: int, l_dr: Any, s_dr: int,
    ) -> Tuple[float, float, float, float]:
        """Flattened :meth:`_ensure_shared_levels` (contention-free tables)."""
        b3 += onchip + l3_lat
        l3 = l3_caches[chip]
        l3_sets, l3_nsets = l3.probe_parts()
        cache_set = l3_sets.get(line_addr % l3_nsets)
        info = cache_set.get(line_addr) if cache_set is not None else None
        if info is not None:
            l3.hits += 1
            l3._tick = tick = l3._tick + 1
            info.last_use = tick
            return b3, b4, b5, b7
        l3.misses += 1
        home_l4 = line_addr % n_l4
        b4 += l4_rt_table[chip][home_l4]
        b5 += l4_lat
        traffic.off_chip_bytes += s_gs + s_dr
        mbt[l_gs] += 1
        bbt[l_gs] += s_gs
        mbt[l_dr] += 1
        bbt[l_dr] += s_dr
        l4 = l4_caches[home_l4]
        l4_sets, l4_nsets = l4.probe_parts()
        cache_set = l4_sets.get(line_addr % l4_nsets)
        info = cache_set.get(line_addr) if cache_set is not None else None
        if info is not None:
            l4.hits += 1
            l4._tick = tick = l4._tick + 1
            info.last_use = tick
        else:
            l4.misses += 1
            timing = memory.access(home_l4, now, line_bytes)
            b7 += timing.latency
            l4.insert(line_addr)
        l3.insert(line_addr)
        return b3, b4, b5, b7

    def _sb_invalidate(
        self, core_id: int, chip: int, line_addr: int,
        entry: Any, victims: Any, b6: float,
        core_states: Any, private_invalidate: Any, touched: Any,
        traffic: Any, mbt: Any, bbt: Any, chip_of: Any,
        onchip: float, l2_lat: float, per_sharer: float, n_l4: int,
        l4_rt_table: Any,
        l_inv: Any, s_inv: int, l_ack: Any, s_ack: int, l_dw: Any, s_dw: int,
    ) -> float:
        """Flattened :meth:`_invalidate_sharers` (no downgrade, no data)."""
        victim_chips = {chip_of[core] for core in victims}
        offchip_chips = {c for c in victim_chips if c != chip}
        inval_latency = 0.0
        if offchip_chips:
            home_l4 = line_addr % n_l4
            inval_latency += max(l4_rt_table[c][home_l4] for c in offchip_chips)
            inval_latency += onchip * 2
        else:
            inval_latency += onchip * 2
        inval_latency += l2_lat
        inval_latency += per_sharer * (len(victims) - 1)
        b6 += inval_latency
        MOD = StableState.MODIFIED
        for core in victims:
            vstate = core_states[core].get(line_addr)
            if chip_of[core] != chip:
                traffic.off_chip_bytes += s_inv
                if vstate is MOD:
                    traffic.off_chip_bytes += s_dw
                    mbt[l_dw] += 1
                    bbt[l_dw] += s_dw
                else:
                    traffic.off_chip_bytes += s_ack
                    mbt[l_ack] += 1
                    bbt[l_ack] += s_ack
            else:
                traffic.on_chip_bytes += s_inv
                if vstate is MOD:
                    traffic.on_chip_bytes += s_dw
                    mbt[l_dw] += 1
                    bbt[l_dw] += s_dw
                else:
                    traffic.on_chip_bytes += s_ack
                    mbt[l_ack] += 1
                    bbt[l_ack] += s_ack
            mbt[l_inv] += 1
            bbt[l_inv] += s_inv
            private_invalidate(core, line_addr)
            touched.add((core, line_addr))
            core_states[core].pop(line_addr, None)
            entry.sharers.discard(core)
            if not entry.sharers:
                entry.mode = LineMode.UNCACHED
                entry.op = None
            self.stat_invalidations += 1
        return b6

    def _access_slow(
        self,
        core_id: int,
        access: MemoryAccess,
        access_type: AccessType,
        line_addr: int,
        state: Optional[StableState],
        now: float,
    ) -> AccessOutcome:
        """Directory/transaction path for accesses the fast path rejected."""
        if access_type is AccessType.LOAD:
            outcome = self._read_transaction(core_id, line_addr, now)
            outcome.value = self._functional_load(access)
            return outcome

        if access_type is AccessType.STORE:
            outcome = self._write_transaction(
                core_id, line_addr, now, needs_data=state is None
            )
            self._functional_store(access)
            return outcome

        # Atomic read-modify-write: requires M just like a store, plus the
        # core-side atomic sequence overhead charged by the core model.
        outcome = self._write_transaction(
            core_id, line_addr, now, needs_data=state is None
        )
        self._functional_update(access)
        outcome.value = self._functional_load(access)
        return outcome

    def _hit_value(self, access: MemoryAccess):
        """Value a private hit returns through the full :meth:`access` API."""
        if access.access_type is AccessType.STORE:
            return None
        return self._functional_load(access)
