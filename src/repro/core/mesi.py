"""Baseline MESI directory protocol engine for the timing simulator.

This engine resolves each access against stable MESI states, computing the
critical-path latency of the coherence transaction it triggers (private hit,
chip-local L3 access, off-chip L4/global-directory access, invalidations and
downgrades of remote sharers, main-memory fills) and recording the traffic it
generates.  Commutative-update accesses are treated exactly like conventional
atomic read-modify-writes — which is precisely how the paper's baseline
benchmark implementations behave — so a single workload trace can be run under
MESI and MEUSI and compared directly.

Contention is modelled with per-line serialization at the directory: a
transaction that transfers ownership or invalidates sharers occupies the
line's home until it completes, so concurrent atomics to a hot line queue up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.core.commutative import CommutativeOp
from repro.core.protocol import AccessOutcome, CoherenceProtocol
from repro.core.states import LineMode, StableState
from repro.interconnect.messages import LinkScope, MessageType
from repro.sim.access import AccessType, MemoryAccess
from repro.sim.config import SystemConfig
from repro.sim.stats import LatencyBreakdown


@dataclass
class TransactionCost:
    """Latency components of one directory transaction."""

    breakdown: LatencyBreakdown
    #: Cycles the line's home stays busy after the request reaches it.
    home_occupancy: float
    invalidations: int = 0


class MesiProtocol(CoherenceProtocol):
    """Full-map directory MESI with the Table 1 four-level hierarchy."""

    name = "MESI"
    SUPPORTS_INLINE_FAST_PATH = True
    #: The batched columnar kernel may classify chunks against this engine's
    #: tables (the generic ``CoherenceProtocol.hot_mask`` implements the MESI
    #: family's rules; MEUSI and RMO inherit both flag and mask).
    SUPPORTS_BATCH_KERNEL = True
    HOT_COMMUTATIVE = "atomic"

    #: Per-sharer serialization when the home must invalidate several caches.
    PER_SHARER_INVAL_CYCLES = 2.0
    #: Directory bookkeeping occupancy for transactions with no remote action.
    LIGHT_OCCUPANCY = 2.0

    def __init__(self, config: SystemConfig, track_values: bool = True) -> None:
        super().__init__(config, track_values=track_values)
        #: Per-core stable state of each line resident in that core's caches.
        self.core_states: List[Dict[int, StableState]] = [
            {} for _ in range(config.n_cores)
        ]

    # ------------------------------------------------------------------ helpers

    def core_state(self, core_id: int, line_addr: int) -> StableState:
        return self.core_states[core_id].get(line_addr, StableState.INVALID)

    def _set_state(self, core_id: int, line_addr: int, state: StableState) -> None:
        # Every slow-path stable-state mutation funnels through here (the
        # simulator's inline hit paths write ``core_states`` directly, but
        # only for E->M upgrades, which no batch classification depends on).
        # When the batched kernel runs, it registers a set to learn which
        # (core, line) pairs a transaction touched so it can repair their
        # tag mirrors incrementally and invalidate chunk classifications.
        touched = self.touched_cores
        if touched is not None:
            touched.add((core_id, line_addr))
        if state is StableState.INVALID:
            self.core_states[core_id].pop(line_addr, None)
        else:
            self.core_states[core_id][line_addr] = state

    def _private_hit_latency(self, level) -> LatencyBreakdown:
        """Latency breakdown of a private hit (level 1/"L1" or 2/"L2")."""
        if level == "L1" or level == 1:
            return LatencyBreakdown(l1=self._l1_latency)
        return LatencyBreakdown(l1=self._l1_latency, l2=self._l2_latency)

    def _chip(self, core_id: int) -> int:
        return self._chip_of_core[core_id]

    # -------------------------------------------------------- eviction handling

    def _handle_private_eviction(self, core_id: int, line_addr: int) -> None:
        """A line fell out of a core's private caches (capacity eviction)."""
        state = self.core_state(core_id, line_addr)
        if state is StableState.INVALID:
            return
        chip = self._chip(core_id)
        if state is StableState.MODIFIED:
            # Dirty writeback to the chip's L3 (on-chip data message).
            self.interconnect.record_one(MessageType.DATA_WRITEBACK, LinkScope.ON_CHIP)
        else:
            # No silent drops: notify the directory with a control message.
            self.interconnect.record_one(MessageType.PUT_LINE, LinkScope.ON_CHIP)
        self._set_state(core_id, line_addr, StableState.INVALID)
        self.directory.remove_sharer(line_addr, core_id)
        self.directory.drop_if_uncached(line_addr)
        # Keep the line resident in the chip's L3 (inclusive hierarchy).
        self._l3_caches[chip].insert(line_addr)

    def _fill_private(self, core_id: int, line_addr: int) -> None:
        """Install a line in the core's private caches, handling victims."""
        victim = self.hierarchy.private_fill_victim(core_id, line_addr)
        if victim is not None:
            self._handle_private_eviction(core_id, victim)

    # ----------------------------------------------------- shared-level lookups

    def _ensure_shared_levels(self, requester_chip: int, line_addr: int, breakdown: LatencyBreakdown) -> None:
        """Charge L3/L4/memory latency for locating the line's data.

        The requester always consults its chip's L3 (and directory slice).  If
        the line is not on-chip it travels to the home L4 chip; if the L4 also
        misses, main memory supplies the data.  Fill the touched levels so
        subsequent accesses from this chip hit closer to the core.
        """
        breakdown.l3 += self._onchip_hop + self._l3_latency
        if self._l3_caches[requester_chip].lookup(line_addr) is not None:
            return
        # Off-chip to the home L4 chip (topology- and contention-aware).
        home_l4 = line_addr % self._n_l4_chips
        breakdown.offchip_network += self._l4_rt(
            requester_chip, home_l4, line_addr, self.current_time
        )
        breakdown.l4 += self._l4_latency
        self.interconnect.record_one(MessageType.GET_SHARED, LinkScope.OFF_CHIP)
        self.interconnect.record_one(MessageType.DATA_RESPONSE, LinkScope.OFF_CHIP)
        if self._l4_caches[home_l4].lookup(line_addr) is None:
            timing = self._memory.access(
                home_l4, self.current_time, self.config.line_bytes
            )
            breakdown.main_memory += timing.latency
            self._l4_caches[home_l4].insert(line_addr)
        self._l3_caches[requester_chip].insert(line_addr)

    # ------------------------------------------------- sharer invalidation cost

    def _invalidate_sharers(
        self,
        requester: int,
        line_addr: int,
        sharers: Set[int],
        breakdown: LatencyBreakdown,
        *,
        downgrade_to: Optional[StableState] = None,
        data_returned: bool = False,
    ) -> int:
        """Invalidate (or downgrade) every sharer except the requester.

        Returns the number of caches acted upon and charges the critical-path
        delay: the global directory sends invalidations to every chip with
        sharers in parallel, each chip invalidates its local caches through
        its L3, and acks flow back.  Cross-chip invalidations therefore cost
        an off-chip round trip plus a small per-sharer serialization term;
        chip-local ones cost an on-chip round trip.
        """
        victims = sorted(sharers - {requester})
        if not victims:
            return 0
        requester_chip = self._chip(requester)
        victim_chips = {self._chip(core) for core in victims}
        offchip_chips = {chip for chip in victim_chips if chip != requester_chip}

        inval_latency = 0.0
        if offchip_chips:
            # The global directory at the line's home L4 chip invalidates
            # every chip in parallel: the critical path is the slowest
            # L4 <-> chip round trip (all equal under the dancehall).
            home_l4 = line_addr % self._n_l4_chips
            now = self.current_time
            inval_latency += max(
                self._l4_control_rt(chip, home_l4, line_addr, now)
                for chip in offchip_chips
            )
            inval_latency += self._onchip_hop * 2
        else:
            inval_latency += self._onchip_hop * 2
        inval_latency += self._l2_latency
        inval_latency += self.PER_SHARER_INVAL_CYCLES * (len(victims) - 1)
        breakdown.l4_invalidations += inval_latency

        for core in victims:
            state = self.core_state(core, line_addr)
            scope = (
                LinkScope.OFF_CHIP
                if self._chip(core) != requester_chip
                else LinkScope.ON_CHIP
            )
            self.interconnect.record_one(MessageType.INVALIDATE, scope)
            if state is StableState.MODIFIED or data_returned:
                self.interconnect.record_one(MessageType.DATA_WRITEBACK, scope)
            else:
                self.interconnect.record_one(MessageType.ACK, scope)
            if downgrade_to is None:
                self.hierarchy.private_invalidate(core, line_addr)
                self._set_state(core, line_addr, StableState.INVALID)
                self.directory.remove_sharer(line_addr, core)
                self.stat_invalidations += 1
            else:
                self._set_state(core, line_addr, downgrade_to)
                self.stat_downgrades += 1
        return len(victims)

    # ------------------------------------------------------------- transactions

    def _serialize_at_home(
        self,
        line_addr: int,
        now: float,
        breakdown: LatencyBreakdown,
        occupancy: float,
        entry=None,
    ) -> None:
        """Queue behind any in-flight transaction for this line."""
        if entry is None:
            entry = self.directory.entry(line_addr)
        start = max(now, entry.busy_until)
        wait = start - now
        if wait > 0:
            breakdown.serialization += wait
        entry.busy_until = start + occupancy

    def _read_transaction(
        self, core_id: int, line_addr: int, now: float
    ) -> AccessOutcome:
        """GetS: obtain read permission (S, or E if unshared)."""
        outcome = AccessOutcome()
        breakdown = outcome.latency
        breakdown.l1 += self._l1_latency
        breakdown.l2 += self._l2_latency
        chip = self._chip(core_id)
        entry = self.directory.entry(line_addr)
        self.interconnect.record_one(MessageType.GET_SHARED, LinkScope.ON_CHIP)

        if entry.mode is LineMode.EXCLUSIVE:
            owner = entry.exclusive_owner()
            occupancy = self._downgrade_owner_for_read(
                core_id, owner, line_addr, breakdown
            )
            self._serialize_at_home(line_addr, now, breakdown, occupancy, entry)
            self.directory.clear_all_sharers(line_addr)
            self.directory.grant_shared(line_addr, owner)
            self._set_state(owner, line_addr, StableState.SHARED)
            entry = self.directory.grant_shared(line_addr, core_id)
            outcome.invalidations += 1
        else:
            self._ensure_shared_levels(chip, line_addr, breakdown)
            self._serialize_at_home(line_addr, now, breakdown, self.LIGHT_OCCUPANCY, entry)
            if entry.mode is LineMode.UNCACHED:
                # Unshared: grant Exclusive (the E optimisation of MESI).
                self.directory.grant_exclusive(line_addr, core_id)
                self._set_state(core_id, line_addr, StableState.EXCLUSIVE)
                self._fill_private(core_id, line_addr)
                self.interconnect.record_one(MessageType.DATA_RESPONSE, LinkScope.ON_CHIP)
                outcome.value = self._load_value(line_addr)
                return outcome
            self.directory.grant_shared(line_addr, core_id)

        self._set_state(core_id, line_addr, StableState.SHARED)
        self._fill_private(core_id, line_addr)
        self.interconnect.record_one(MessageType.DATA_RESPONSE, LinkScope.ON_CHIP)
        outcome.value = self._load_value(line_addr)
        return outcome

    def _downgrade_owner_for_read(
        self, requester: int, owner: int, line_addr: int, breakdown: LatencyBreakdown
    ) -> float:
        """Fetch data from the current exclusive owner, downgrading it to S."""
        requester_chip = self._chip(requester)
        owner_chip = self._chip(owner)
        breakdown.l3 += self._onchip_hop + self._l3_latency
        latency = self._l2_latency + 2 * self._onchip_hop
        if owner_chip != requester_chip:
            transfer = self._chip_rt(requester_chip, owner_chip, self.current_time)
            latency += transfer
            breakdown.offchip_network += transfer
            breakdown.l4 += self._l4_latency
            scope = LinkScope.OFF_CHIP
        else:
            scope = LinkScope.ON_CHIP
        breakdown.l4_invalidations += latency
        self.interconnect.record_one(MessageType.DOWNGRADE, scope)
        self.interconnect.record_one(MessageType.DATA_WRITEBACK, scope)
        self.stat_downgrades += 1
        self._l3_caches[requester_chip].insert(line_addr)
        return latency

    def _write_transaction(
        self,
        core_id: int,
        line_addr: int,
        now: float,
        *,
        needs_data: bool,
    ) -> AccessOutcome:
        """GetX/Upgrade: obtain exclusive (M) permission."""
        outcome = AccessOutcome()
        breakdown = outcome.latency
        breakdown.l1 += self._l1_latency
        breakdown.l2 += self._l2_latency
        chip = self._chip(core_id)
        entry = self.directory.entry(line_addr)
        self.interconnect.record_one(MessageType.GET_EXCLUSIVE, LinkScope.ON_CHIP)

        sharers = entry.sharers
        occupancy = self.LIGHT_OCCUPANCY

        if entry.mode is LineMode.EXCLUSIVE and entry.exclusive_owner() != core_id:
            owner = entry.exclusive_owner()
            occupancy = self._downgrade_owner_for_read(core_id, owner, line_addr, breakdown)
            self.hierarchy.private_invalidate(owner, line_addr)
            self._set_state(owner, line_addr, StableState.INVALID)
            self.stat_invalidations += 1
            outcome.invalidations += 1
        elif (entry.mode is LineMode.READ_ONLY or entry.mode is LineMode.UPDATE_ONLY) and (
            len(sharers) > 1 or (sharers and core_id not in sharers)
        ):
            self._ensure_shared_levels(chip, line_addr, breakdown)
            count = self._invalidate_sharers(core_id, line_addr, set(sharers), breakdown)
            outcome.invalidations += count
            occupancy = breakdown.l4_invalidations + self.LIGHT_OCCUPANCY
        else:
            if needs_data and self.core_state(core_id, line_addr) is StableState.INVALID:
                self._ensure_shared_levels(chip, line_addr, breakdown)
            occupancy = max(self.LIGHT_OCCUPANCY, breakdown.offchip_network + breakdown.l4)

        self._serialize_at_home(line_addr, now, breakdown, occupancy, entry)
        self.directory.clear_all_sharers(line_addr)
        self.directory.grant_exclusive(line_addr, core_id)
        self._set_state(core_id, line_addr, StableState.MODIFIED)
        self._fill_private(core_id, line_addr)
        self.interconnect.record_one(MessageType.DATA_RESPONSE, LinkScope.ON_CHIP)
        return outcome

    # ------------------------------------------------------------ value helpers

    def _load_value(self, line_addr: int):
        if not self.track_values:
            return None
        return None  # Line-level loads have word granularity handled by callers.

    def _functional_load(self, access: MemoryAccess):
        if not self.track_values:
            return None
        return self.memory_image.get(access.address, 0)

    def _functional_store(self, access: MemoryAccess) -> None:
        if self.track_values and access.value is not None:
            self.memory_image[access.address] = access.value

    def _functional_update(self, access: MemoryAccess) -> None:
        if not self.track_values or access.op is None or access.value is None:
            return
        current = self.memory_image.get(access.address, access.op.identity)
        self.memory_image[access.address] = access.op.apply(current, access.value)

    # --------------------------------------------------------------- main entry

    def access(self, core_id: int, access: MemoryAccess, now: float) -> AccessOutcome:
        result = self.access_hot(core_id, access, now)
        if result.__class__ is int:
            outcome = AccessOutcome(private_hit=True)
            outcome.latency = self._private_hit_latency(result)
            outcome.value = self._hit_value(access)
            return outcome
        return result

    def access_hot(self, core_id: int, access: MemoryAccess, now: float):
        """Resolve one access; private hits return just the hit level (1/2).

        This is the simulator's per-access entry point.  The private-hit fast
        path performs the same lookups, LRU refreshes, state transitions, and
        functional updates as the transaction path's hit handling used to,
        but skips every allocation (no outcome, no breakdown): the caller
        charges the fixed L1/L2 hit latency itself.
        """
        line_addr = access.address >> self._line_shift
        access_type = access.access_type
        # MESI has no update-only support: commutative and remote updates are
        # executed as conventional atomic read-modify-writes.
        if (
            access_type is AccessType.COMMUTATIVE_UPDATE
            or access_type is AccessType.REMOTE_UPDATE
        ):
            access_type = AccessType.ATOMIC_RMW

        states = self.core_states[core_id]
        state = states.get(line_addr)
        level = self._private_level(core_id, line_addr)

        if level and state is not None:
            if access_type is AccessType.LOAD:
                # repro-lint: disable=P203(shared MESI-family fast path also services MEUSI U lines via inheritance; plain MESI never reaches this state)
                if state is not StableState.UPDATE:  # S/E/M can satisfy a load
                    return level
            elif (
                state is StableState.MODIFIED or state is StableState.EXCLUSIVE
            ):  # store or atomic with write permission
                states[line_addr] = StableState.MODIFIED
                if access_type is AccessType.STORE:
                    if self.track_values and access.value is not None:
                        self.memory_image[access.address] = access.value
                else:
                    self._functional_update(access)
                return level

        return self.resolve_slow(core_id, access, line_addr, state, level, now)

    def resolve_slow(
        self,
        core_id: int,
        access: MemoryAccess,
        line_addr: int,
        state: Optional[StableState],
        level,
        now: float,
    ) -> AccessOutcome:
        if level is None:
            self._private_level(core_id, line_addr)
        access_type = access.access_type
        if (
            access_type is AccessType.COMMUTATIVE_UPDATE
            or access_type is AccessType.REMOTE_UPDATE
        ):
            access_type = AccessType.ATOMIC_RMW
        self.current_time = now
        return self._access_slow(core_id, access, access_type, line_addr, state, now)

    def _access_slow(
        self,
        core_id: int,
        access: MemoryAccess,
        access_type: AccessType,
        line_addr: int,
        state: Optional[StableState],
        now: float,
    ) -> AccessOutcome:
        """Directory/transaction path for accesses the fast path rejected."""
        if access_type is AccessType.LOAD:
            outcome = self._read_transaction(core_id, line_addr, now)
            outcome.value = self._functional_load(access)
            return outcome

        if access_type is AccessType.STORE:
            outcome = self._write_transaction(
                core_id, line_addr, now, needs_data=state is None
            )
            self._functional_store(access)
            return outcome

        # Atomic read-modify-write: requires M just like a store, plus the
        # core-side atomic sequence overhead charged by the core model.
        outcome = self._write_transaction(
            core_id, line_addr, now, needs_data=state is None
        )
        self._functional_update(access)
        outcome.value = self._functional_load(access)
        return outcome

    def _hit_value(self, access: MemoryAccess):
        """Value a private hit returns through the full :meth:`access` API."""
        if access.access_type is AccessType.STORE:
            return None
        return self._functional_load(access)
