"""COUP's core contribution: commutative operations and coherence protocols."""

from repro.core.commutative import (
    ALL_OPS,
    CommutativeOp,
    DeltaBuffer,
    OperationSpec,
    commutes_with,
    reduce_partial_updates,
)
from repro.core.directory import Directory, DirectoryEntry
from repro.core.mesi import MesiProtocol
from repro.core.meusi import MeusiProtocol
from repro.core.multiword import (
    SetDeltaBuffer,
    SetInsertOp,
    reduce_set_deltas,
    reduce_with_overflow,
)
from repro.core.protocol import AccessOutcome, CoherenceProtocol
from repro.core.reduction import ReductionUnit, hierarchical_reduction_ops
from repro.core.rmo import RmoProtocol
from repro.core.states import LineMode, NonExclusiveType, RequestType, StableState

__all__ = [
    "ALL_OPS",
    "AccessOutcome",
    "CoherenceProtocol",
    "CommutativeOp",
    "DeltaBuffer",
    "Directory",
    "DirectoryEntry",
    "LineMode",
    "MesiProtocol",
    "MeusiProtocol",
    "NonExclusiveType",
    "OperationSpec",
    "ReductionUnit",
    "RequestType",
    "RmoProtocol",
    "SetDeltaBuffer",
    "SetInsertOp",
    "StableState",
    "commutes_with",
    "hierarchical_reduction_ops",
    "reduce_partial_updates",
    "reduce_set_deltas",
    "reduce_with_overflow",
]
