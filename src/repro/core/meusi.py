"""MEUSI: the COUP-extended MESI protocol engine.

MEUSI adds the update-only (U) state to MESI (Fig. 6): multiple private caches
may simultaneously hold a line in U and satisfy commutative updates of the
line's current operation type locally, buffering deltas relative to the
identity element.  Reads, writes, evictions, and updates of a *different*
commutative type trigger reductions that fold the buffered deltas into the
authoritative copy at the shared cache:

* an L2 capacity eviction of a U line sends its partial update to the chip's
  L3 bank — a *partial reduction*, off the critical path;
* a read or write request to a line in update-only mode triggers a *full
  reduction*: every updater is invalidated, partial updates are gathered
  hierarchically (per-chip L3 reduction, then L4), and the reduction unit
  folds them before data is returned.

Just as MESI grants E to a read of an unshared line, MEUSI grants M to an
update of an unshared line, so interleaved reads and updates to private data
cost the same as under MESI.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.commutative import ALL_OPS, CommutativeOp, DeltaBuffer

#: Op -> index in :data:`ALL_OPS`, for the batch-classification contract.
_OP_INDEX = {op: index for index, op in enumerate(ALL_OPS)}
from repro.core.mesi import MesiProtocol
from repro.core.protocol import SHAPE_CONFLICT, SHAPE_FAST, SHAPE_OP_DEPENDENT, AccessOutcome
from repro.core.states import LineMode, StableState
from repro.interconnect.messages import LinkScope, MessageType
from repro.sim.access import AccessType, MemoryAccess
from repro.sim.config import SystemConfig
from repro.sim.stats import LatencyBreakdown


class MeusiProtocol(MesiProtocol):
    """COUP: MESI extended with update-only permission and reductions."""

    name = "COUP"
    HOT_COMMUTATIVE = "local"

    #: Independence classification (mode x kind: load/store/atomic/comm/remote).
    #: Stable MESI modes keep their flattened twins; GetU joins and grants
    #: (U1-U5) are flattened too.  Demand accesses to an update-only line and
    #: cross-op updates trigger full reductions — true conflicts that must
    #: retire through the exact scalar path — so the update-only row is
    #: conflict for demand kinds and op-dependent (same-op joins only) for
    #: commutative/remote updates.
    SLOW_SHAPE_TABLE = np.array(
        [
            [SHAPE_FAST] * 5,  # UNCACHED: cold grants (incl. U1)
            [SHAPE_FAST] * 5,  # EXCLUSIVE: downgrades / U2 / U3
            [SHAPE_FAST] * 5,  # READ_ONLY: joins / upgrades / U4
            [
                SHAPE_CONFLICT,      # load: full reduction
                SHAPE_CONFLICT,      # store: full reduction
                SHAPE_CONFLICT,      # atomic: full reduction
                SHAPE_OP_DEPENDENT,  # commutative: U5 join iff same op
                SHAPE_OP_DEPENDENT,  # remote (folded commutative)
            ],
        ],
        dtype=np.uint8,
    )

    def __init__(self, config: SystemConfig, track_values: bool = True) -> None:
        super().__init__(config, track_values=track_values)
        #: Per-core delta buffers for lines held in U: (core, line) -> buffer.
        self.delta_buffers: Dict[Tuple[int, int], DeltaBuffer] = {}
        #: Commutative updates satisfied locally without any protocol action.
        self.stat_local_updates = 0
        #: Update-only permission grants (GetU transactions).
        self.stat_update_grants = 0

    # ----------------------------------------------------------- delta handling

    def _buffer_for(self, core_id: int, line_addr: int, op: CommutativeOp) -> DeltaBuffer:
        key = (core_id, line_addr)
        buffer = self.delta_buffers.get(key)
        if buffer is None or buffer.op is not op:
            buffer = DeltaBuffer(op)
            self.delta_buffers[key] = buffer
        return buffer

    def _apply_local_update(self, core_id: int, access: MemoryAccess) -> None:
        """Buffer a commutative update in the core's U-state line."""
        line_addr = self.line_addr(access.address)
        if self.track_values and access.value is not None:
            buffer = self._buffer_for(core_id, line_addr, access.op)
            buffer.update(access.address, access.value)

    def batch_uop_code(self, core_id: int, line_addr: int) -> int:
        """Op index under which the batched kernel may classify a U line hot.

        Part of the batch-classification contract (see
        :meth:`CoherenceProtocol.hot_mask`): a commutative or remote update
        to a line this core holds in U is a pure local hit only when the
        directory entry carries the same op.  One extra guard keeps batching
        bit-identical when values are tracked: the core's delta buffer for
        the line must already exist.  Creating a buffer inserts a key into
        ``delta_buffers``, and ``finalize`` commits buffers in insertion
        order — floating-point reductions make that order observable — so
        first-buffering updates are deliberately sent through the globally
        ordered slow/inline path instead of a reordered hit-run.  Returns
        the op's :data:`~repro.core.commutative.ALL_OPS` index, or 255
        (``UOP_NONE``) when the line must classify slow.
        """
        entry = self.directory.peek(line_addr)
        if entry is None or entry.op is None:
            return 255
        if self.track_values and (core_id, line_addr) not in self.delta_buffers:
            return 255
        return _OP_INDEX[entry.op]

    def _commit_buffer(self, core_id: int, line_addr: int) -> int:
        """Fold one core's delta buffer into the memory image.

        Returns 1 if a (possibly empty) partial update was present, so callers
        can count the number of partial updates gathered by a reduction.
        """
        key = (core_id, line_addr)
        buffer = self.delta_buffers.pop(key, None)
        if buffer is None:
            return 1
        if self.track_values:
            for word_addr in buffer.touched_offsets():
                current = self.memory_image.get(word_addr, buffer.op.identity)
                self.memory_image[word_addr] = buffer.op.apply(
                    current, buffer.delta(word_addr)
                )
        return 1

    # ------------------------------------------------------- eviction handling

    def _handle_private_eviction(self, core_id: int, line_addr: int) -> None:
        state = self.core_state(core_id, line_addr)
        if state is StableState.UPDATE:
            # Partial reduction: ship the delta to the chip's L3 reduction unit.
            chip = self._chip(core_id)
            self.interconnect.record_one(MessageType.PUT_PARTIAL, LinkScope.ON_CHIP)
            unit = self.reduction_unit_for_l3(chip, line_addr)
            unit.schedule(self.current_time, 1)
            self._commit_buffer(core_id, line_addr)
            self._set_state(core_id, line_addr, StableState.INVALID)
            self.directory.remove_sharer(line_addr, core_id)
            self.directory.drop_if_uncached(line_addr)
            self._l3_caches[chip].insert(line_addr)
            self.stat_partial_reductions += 1
            return
        super()._handle_private_eviction(core_id, line_addr)

    # ---------------------------------------------------------- full reductions

    def _full_reduction(
        self,
        requester: int,
        line_addr: int,
        breakdown: LatencyBreakdown,
        *,
        keep_requester: bool = False,
    ) -> Tuple[int, float]:
        """Reduce all update-only copies of a line into the shared cache.

        Returns ``(n_partials, critical_path_latency)``.  The reduction is
        hierarchical: each chip with updaters invalidates them and folds their
        partial updates at its L3 bank's reduction unit; the home L4 bank then
        folds the per-chip results.  The critical path is therefore the
        slowest chip-local gather plus the cross-chip gather, mirroring the
        8 + 16 = 24 example of Sec. 3.2.
        """
        entry = self.directory.entry(line_addr)
        updaters = set(entry.sharers)
        if keep_requester:
            updaters.discard(requester)
        if not updaters and entry.mode is not LineMode.UPDATE_ONLY:
            return 0, 0.0

        requester_chip = self._chip(requester)
        chips: Dict[int, List[int]] = {}
        for core in sorted(updaters):
            chips.setdefault(self._chip(core), []).append(core)

        critical_path = 0.0
        total_partials = 0
        # repro-lint: disable=D102(chips is keyed by ascending core id so view order is deterministic; the loop accumulates order-insensitive sums and maxima)
        for chip, cores in chips.items():
            # Invalidation fan-out within the chip plus local gather.
            local_latency = (
                2 * self._onchip_hop
                + self._l2_latency
                + self.PER_SHARER_INVAL_CYCLES * max(0, len(cores) - 1)
            )
            unit = self.reduction_unit_for_l3(chip, line_addr)
            timing = unit.schedule(self.current_time, len(cores))
            local_latency += timing.latency
            scope = LinkScope.OFF_CHIP if chip != requester_chip else LinkScope.ON_CHIP
            for core in cores:
                self.interconnect.record_one(MessageType.REDUCE_REQUEST, scope if chip != requester_chip else LinkScope.ON_CHIP)
                self.interconnect.record_one(MessageType.PARTIAL_UPDATE, LinkScope.ON_CHIP)
                self._commit_buffer(core, line_addr)
                self.hierarchy.private_invalidate(core, line_addr)
                self._set_state(core, line_addr, StableState.INVALID)
                total_partials += 1
            if chip != requester_chip:
                # The chip's single aggregated partial update crosses off-chip
                # to the home L4 bank's reduction unit.
                self.interconnect.record_one(MessageType.PARTIAL_UPDATE, LinkScope.OFF_CHIP)
                local_latency += self._l4_partial(
                    chip, line_addr % self._n_l4_chips, line_addr, self.current_time
                )
            critical_path = max(critical_path, local_latency)

        if len(chips) > 1 or (chips and requester_chip not in chips):
            # Cross-chip gather at the home L4 bank's reduction unit.
            l4_unit = self.reduction_unit_for_l4(line_addr)
            timing = l4_unit.schedule(self.current_time, max(1, len(chips)))
            critical_path += timing.latency + self._l4_latency

        breakdown.l4_invalidations += critical_path
        self.directory.clear_all_sharers(line_addr)
        self.stat_full_reductions += 1
        self.stat_invalidations += total_partials
        return total_partials, critical_path

    # --------------------------------------------------------- GetU transaction

    def _update_transaction(
        self, core_id: int, line_addr: int, op: CommutativeOp, now: float
    ) -> AccessOutcome:
        """Obtain update-only (or exclusive, if unshared) permission."""
        outcome = AccessOutcome()
        breakdown = outcome.latency
        breakdown.l1 += self._l1_latency
        breakdown.l2 += self._l2_latency
        chip = self._chip(core_id)
        entry = self.directory.entry(line_addr)
        self.interconnect.record_one(MessageType.GET_UPDATE, LinkScope.ON_CHIP)
        self.stat_update_grants += 1

        if entry.mode is LineMode.UNCACHED:
            # Unshared: grant M directly (the E-like optimisation of Fig. 6).
            self._ensure_shared_levels(chip, line_addr, breakdown)
            self._serialize_at_home(line_addr, now, breakdown, self.LIGHT_OCCUPANCY, entry)
            self.directory.grant_exclusive(line_addr, core_id)
            self._set_state(core_id, line_addr, StableState.MODIFIED)
            self._fill_private(core_id, line_addr)
            self.interconnect.record_one(MessageType.DATA_RESPONSE, LinkScope.ON_CHIP)
            return outcome

        if entry.mode is LineMode.EXCLUSIVE:
            owner = entry.exclusive_owner()
            if owner == core_id:
                # Our own copy: commutative updates proceed in M locally.
                self._set_state(core_id, line_addr, StableState.MODIFIED)
                return outcome
            # Downgrade the owner from M to U; both caches become updaters.
            owner_chip = self._chip(owner)
            scope = LinkScope.OFF_CHIP if owner_chip != chip else LinkScope.ON_CHIP
            latency = self._l2_latency + 2 * self._onchip_hop
            if owner_chip != chip:
                transfer = self._chip_rt(chip, owner_chip, self.current_time)
                latency += transfer
                breakdown.offchip_network += transfer
                breakdown.l4 += self._l4_latency
            breakdown.l4_invalidations += latency
            self.interconnect.record_one(MessageType.DOWNGRADE, scope)
            self.interconnect.record_one(MessageType.DATA_WRITEBACK, scope)
            self._serialize_at_home(line_addr, now, breakdown, latency)
            self.stat_downgrades += 1
            # The owner's data is written back to the shared cache; the owner
            # keeps an update-only copy initialised to the identity element.
            self._l3_caches[owner_chip].insert(line_addr)
            self.directory.clear_all_sharers(line_addr)
            self.directory.grant_update_only(line_addr, owner, op)
            self.directory.grant_update_only(line_addr, core_id, op)
            self._set_state(owner, line_addr, StableState.UPDATE)
            self._set_state(core_id, line_addr, StableState.UPDATE)
            self._buffer_for(owner, line_addr, op)
            self._fill_private(core_id, line_addr)
            self.interconnect.record_one(MessageType.GRANT_NO_DATA, LinkScope.ON_CHIP)
            return outcome

        if entry.mode is LineMode.READ_ONLY:
            # Invalidate all read-only copies, then grant update-only.
            self._ensure_shared_levels(chip, line_addr, breakdown)
            count = self._invalidate_sharers(core_id, line_addr, set(entry.sharers), breakdown)
            outcome.invalidations += count
            occupancy = breakdown.l4_invalidations + self.LIGHT_OCCUPANCY
            self._serialize_at_home(line_addr, now, breakdown, occupancy, entry)
            self.directory.clear_all_sharers(line_addr)
            self.directory.grant_update_only(line_addr, core_id, op)
            self._set_state(core_id, line_addr, StableState.UPDATE)
            self._fill_private(core_id, line_addr)
            self.interconnect.record_one(MessageType.GRANT_NO_DATA, LinkScope.ON_CHIP)
            return outcome

        # entry.mode is UPDATE_ONLY
        if entry.op is not op:
            # Updates of different commutative types do not commute: perform a
            # full reduction (type switch through the NN transient in Fig. 7b).
            partials, latency = self._full_reduction(core_id, line_addr, breakdown)
            outcome.invalidations += partials
            outcome.full_reduction = True
            self._serialize_at_home(line_addr, now, breakdown, latency + self.LIGHT_OCCUPANCY)
        else:
            self._ensure_shared_levels(chip, line_addr, breakdown)
            self._serialize_at_home(line_addr, now, breakdown, self.LIGHT_OCCUPANCY, entry)
        self.directory.grant_update_only(line_addr, core_id, op)
        self._set_state(core_id, line_addr, StableState.UPDATE)
        self._fill_private(core_id, line_addr)
        self.interconnect.record_one(MessageType.GRANT_NO_DATA, LinkScope.ON_CHIP)
        return outcome

    # ------------------------------------------------------------- main entry

    def access_hot(self, core_id: int, access: MemoryAccess, now: float):
        """MEUSI hot path: local commutative updates return just the hit level.

        See :meth:`MesiProtocol.access_hot` for the return convention.  The
        public :meth:`access` API (inherited from the base class) wraps the
        integer form back into a full :class:`AccessOutcome`.
        """
        line_addr = access.address >> self._line_shift
        access_type = access.access_type
        if access_type is AccessType.REMOTE_UPDATE:
            # A COUP machine executes remote updates as commutative updates.
            access_type = AccessType.COMMUTATIVE_UPDATE

        if access_type is AccessType.COMMUTATIVE_UPDATE:
            states = self.core_states[core_id]
            state = states.get(line_addr)
            entry = self.directory.peek(line_addr)
            level = self._private_level(core_id, line_addr)
            if level and state is not None:
                if state is StableState.MODIFIED or state is StableState.EXCLUSIVE:
                    # Our own M/E copy can absorb any commutative update.
                    states[line_addr] = StableState.MODIFIED
                    self._functional_update(access)
                    self.stat_local_updates += 1
                    return level
                if (
                    state is StableState.UPDATE
                    and access.op is not None
                    and entry is not None
                    and entry.op is access.op
                ):
                    # U-state line of the same update type: buffer locally.
                    self._apply_local_update(core_id, access)
                    self.stat_local_updates += 1
                    return level
            return self.resolve_slow(core_id, access, line_addr, state, level, now)

        return self.resolve_slow(core_id, access, line_addr, None, None, now)

    def resolve_slow(
        self,
        core_id: int,
        access: MemoryAccess,
        line_addr: int,
        state,
        level,
        now: float,
    ) -> AccessOutcome:
        access_type = access.access_type
        if (
            access_type is AccessType.COMMUTATIVE_UPDATE
            or access_type is AccessType.REMOTE_UPDATE
        ):
            if level is None:
                self._private_level(core_id, line_addr)
            self.current_time = now
            outcome = self._update_transaction(core_id, line_addr, access.op, now)
            new_state = self.core_states[core_id].get(line_addr)
            if new_state is StableState.EXCLUSIVE or new_state is StableState.MODIFIED:
                self._functional_update(access)
            else:
                self._apply_local_update(core_id, access)
            return outcome

        entry = self.directory.peek(line_addr)
        if entry is not None and entry.mode is LineMode.UPDATE_ONLY:
            self.current_time = now
            return self._demand_on_update_mode_line(
                core_id, access, access_type, line_addr, now
            )

        # A core's own U-state line cannot satisfy loads/stores; drop to I
        # first so the base-class transaction logic treats it as a miss.
        # This can only happen if the directory entry lost update mode,
        # which the full-reduction path above prevents; keep as safety net.
        if self.core_states[core_id].get(line_addr) is StableState.UPDATE:
            self.current_time = now
            self._commit_buffer(core_id, line_addr)
            self._set_state(core_id, line_addr, StableState.INVALID)
            self.directory.remove_sharer(line_addr, core_id)

        if level is None:
            # The private caches have not been probed yet (update-mode and
            # safety-net cases above, or the compatibility path): run the
            # full base-class resolution, which probes exactly once.
            return MesiProtocol.access_hot(self, core_id, access, now)
        return MesiProtocol.resolve_slow(self, core_id, access, line_addr, state, level, now)

    def _demand_on_update_mode_line(
        self,
        core_id: int,
        access: MemoryAccess,
        access_type: AccessType,
        line_addr: int,
        now: float,
    ) -> AccessOutcome:
        """Read or write request to a line currently in update-only mode."""
        if access_type is AccessType.LOAD:
            # Reads of a line in update-only mode trigger a full reduction.
            outcome = AccessOutcome()
            breakdown = outcome.latency
            breakdown.l1 += self._l1_latency
            breakdown.l2 += self._l2_latency
            self.interconnect.record_one(MessageType.GET_SHARED, LinkScope.ON_CHIP)
            chip = self._chip(core_id)
            self._ensure_shared_levels(chip, line_addr, breakdown)
            partials, latency = self._full_reduction(core_id, line_addr, breakdown)
            outcome.invalidations += partials
            outcome.full_reduction = True
            self._serialize_at_home(line_addr, now, breakdown, latency + self.LIGHT_OCCUPANCY)
            self.directory.grant_shared(line_addr, core_id)
            self._set_state(core_id, line_addr, StableState.SHARED)
            self._fill_private(core_id, line_addr)
            self.interconnect.record_one(MessageType.DATA_RESPONSE, LinkScope.ON_CHIP)
            outcome.value = self._functional_load(access)
            return outcome

        # Writes need M: reduce first, then take exclusive ownership.
        outcome = AccessOutcome()
        breakdown = outcome.latency
        breakdown.l1 += self._l1_latency
        breakdown.l2 += self._l2_latency
        self.interconnect.record_one(MessageType.GET_EXCLUSIVE, LinkScope.ON_CHIP)
        chip = self._chip(core_id)
        self._ensure_shared_levels(chip, line_addr, breakdown)
        partials, latency = self._full_reduction(core_id, line_addr, breakdown)
        outcome.invalidations += partials
        outcome.full_reduction = True
        self._serialize_at_home(line_addr, now, breakdown, latency + self.LIGHT_OCCUPANCY)
        self.directory.clear_all_sharers(line_addr)
        self.directory.grant_exclusive(line_addr, core_id)
        self._set_state(core_id, line_addr, StableState.MODIFIED)
        self._fill_private(core_id, line_addr)
        self.interconnect.record_one(MessageType.DATA_RESPONSE, LinkScope.ON_CHIP)
        if access_type is AccessType.STORE:
            self._functional_store(access)
        else:
            self._functional_update(access)
            outcome.value = self._functional_load(access)
        return outcome

    def _hit_value(self, access: MemoryAccess):
        if access.access_type.is_commutative:
            return None  # Commutative hits buffer a delta; nothing is returned.
        return super()._hit_value(access)

    # ---------------------------------------------------------------- finalize

    def finalize(self) -> None:
        """Fold every outstanding delta buffer into the memory image.

        At the end of a run some lines may still be in update-only mode; their
        buffered deltas have not yet been observed by any reader.  Committing
        them here makes the functional memory image equal to what a reader
        would see after a full reduction, which is what result-checking tests
        compare against.
        """
        # repro-lint: disable=D102(buffers commit independently per line; insertion order is the deterministic trace order, pinned by golden fingerprints)
        for (core_id, line_addr) in list(self.delta_buffers.keys()):
            self._commit_buffer(core_id, line_addr)

    # -------------------------------------------------------------- statistics

    def reduction_statistics(self) -> dict:
        """Reduction-related counters used by experiments and tests."""
        return {
            "local_updates": self.stat_local_updates,
            "update_grants": self.stat_update_grants,
            "full_reductions": self.stat_full_reductions,
            "partial_reductions": self.stat_partial_reductions,
        }
