"""Multi-word commutative updates: set insertion (the paper's future-work extension).

Sec. 7 notes that, with limited programmability in the cache controller, COUP
could support multi-word commutative updates such as insertions into unordered
sets.  This module provides that extension for the reproduction:

* :class:`SetInsertOp` — a commutative, associative, idempotent operation over
  small per-line hash sets (a line is treated as ``k`` buckets of 64-bit
  element slots); the identity element is the empty set.
* :class:`SetDeltaBuffer` — the per-cache buffered state while a line is held
  in update-only mode for set insertion.
* :func:`reduce_set_deltas` — the reduction that folds several caches' buffered
  insertions into the authoritative copy.

Because insertion is idempotent and commutative, buffering insertions locally
and merging them on a read preserves the set's final contents regardless of
the interleaving — the same argument as for single-word updates.  Overflowing
a line's capacity falls back to software (the protocol performs the insert as
an ordinary read-modify-write), which the model exposes through
:attr:`SetDeltaBuffer.overflowed`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Sequence, Set


@dataclass(frozen=True)
class SetInsertOp:
    """Commutative insertion into a bounded per-line set.

    ``capacity`` is the number of element slots a cache line provides (eight
    64-bit slots for a 64-byte line by default).
    """

    capacity: int = 8

    @property
    def identity(self) -> FrozenSet[int]:
        """The identity element: the empty set."""
        return frozenset()

    def apply(self, current: FrozenSet[int], elements: Iterable[int]) -> FrozenSet[int]:
        """Insert ``elements`` into ``current`` (commutative and idempotent)."""
        return frozenset(current) | frozenset(elements)

    def fits(self, value: FrozenSet[int]) -> bool:
        """Whether a set still fits in the line's slots."""
        return len(value) <= self.capacity


class SetDeltaBuffer:
    """Buffered insertions held by one private cache in update-only mode."""

    def __init__(self, op: SetInsertOp) -> None:
        self.op = op
        self._inserted: Set[int] = set()
        #: Set when the buffered insertions no longer fit in the line; the
        #: protocol must then fall back to a read-modify-write.
        self.overflowed = False

    def insert(self, element: int) -> bool:
        """Buffer one insertion; returns False (and flags overflow) if full."""
        if len(self._inserted) >= self.op.capacity and element not in self._inserted:
            self.overflowed = True
            return False
        self._inserted.add(element)
        return True

    @property
    def inserted(self) -> FrozenSet[int]:
        return frozenset(self._inserted)

    def is_empty(self) -> bool:
        return not self._inserted

    def clear(self) -> None:
        self._inserted.clear()
        self.overflowed = False


def reduce_set_deltas(
    op: SetInsertOp, base: FrozenSet[int], buffers: Sequence[SetDeltaBuffer]
) -> FrozenSet[int]:
    """Fold buffered insertions from several caches into the base set.

    The result is independent of the order of ``buffers`` (union is commutative
    and associative), which tests assert explicitly.
    """
    result = frozenset(base)
    for buffer in buffers:
        result = op.apply(result, buffer.inserted)
    return result


@dataclass
class SetReductionOutcome:
    """Outcome of reducing a set line, including the software-fallback signal."""

    value: FrozenSet[int]
    overflowed: bool
    n_partials: int


def reduce_with_overflow(
    op: SetInsertOp, base: FrozenSet[int], buffers: Sequence[SetDeltaBuffer]
) -> SetReductionOutcome:
    """Reduce buffered insertions, reporting whether the line overflowed.

    An overflow means the merged set no longer fits in the line; a full
    implementation would spill to a software-managed structure at that point,
    exactly as the paper suggests handling operations beyond the cache
    controller's capability.
    """
    value = reduce_set_deltas(op, base, buffers)
    overflowed = not op.fits(value) or any(buffer.overflowed for buffer in buffers)
    return SetReductionOutcome(value=value, overflowed=overflowed, n_partials=len(buffers))
