"""Commutative update operations supported by COUP.

The paper applies COUP to any commutative semigroup ``(G, o)`` and, for
multi-word cache blocks, requires a commutative *monoid* (an identity element
so that freshly granted update-only lines can be initialised without knowing
the current value).  This module defines the eight operation/data-type
combinations the paper evaluates (Sec. 5.1):

* integer addition on 16-, 32-, and 64-bit words,
* floating-point addition on 32- and 64-bit words,
* bitwise AND, OR, and XOR on 64-bit words,

plus a small registry so protocols, reduction units, and workloads can share
a single definition of "what does this operation do and what is its identity".

Values are modelled as Python ints/floats; integer operations wrap to the
declared word width so that delta buffering behaves like hardware registers.
"""

from __future__ import annotations

import enum
import operator
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence


class OpKind(enum.Enum):
    """The algebraic family an operation belongs to."""

    INT_ADD = "int_add"
    FP_ADD = "fp_add"
    BITWISE_AND = "and"
    BITWISE_OR = "or"
    BITWISE_XOR = "xor"


class CommutativeOp(enum.Enum):
    """The eight commutative-update instruction types evaluated in the paper."""

    ADD_I16 = "add_i16"
    ADD_I32 = "add_i32"
    ADD_I64 = "add_i64"
    ADD_F32 = "add_f32"
    ADD_F64 = "add_f64"
    AND_64 = "and_64"
    OR_64 = "or_64"
    XOR_64 = "xor_64"

    @property
    def spec(self) -> "OperationSpec":
        """The full operational definition of this op."""
        return _SPECS[self]

    @property
    def identity(self):
        """Identity element used to initialise lines entering the U state."""
        return _SPECS[self].identity

    @property
    def word_bytes(self) -> int:
        """Width, in bytes, of the word this op updates."""
        return _SPECS[self].word_bytes

    def apply(self, current, value):
        """Apply this op to ``current`` with operand ``value``."""
        return _SPECS[self].apply(current, value)

    def reduce(self, deltas: Iterable):
        """Fold an iterable of partial deltas into a single delta."""
        return _SPECS[self].reduce(deltas)


@dataclass(frozen=True)
class OperationSpec:
    """Functional definition of a commutative update operation.

    Attributes
    ----------
    op:
        The :class:`CommutativeOp` this spec belongs to.
    kind:
        Algebraic family (integer add, fp add, bitwise ...).
    word_bytes:
        Width of the updated word in bytes.
    identity:
        Identity element (the paper's requirement for multi-word blocks).
    fn:
        Binary operator implementing the update.
    signed:
        Whether integer values are interpreted as signed two's-complement.
    """

    op: CommutativeOp
    kind: OpKind
    word_bytes: int
    identity: object
    fn: Callable
    signed: bool = True

    @property
    def word_bits(self) -> int:
        return self.word_bytes * 8

    def __post_init__(self) -> None:
        # Precompute the wrapping constants once; ``apply`` runs per
        # functionally-tracked update, so recomputing the mask there is
        # measurable.  object.__setattr__ because the dataclass is frozen.
        bits = self.word_bytes * 8
        object.__setattr__(self, "_mask", (1 << bits) - 1)
        object.__setattr__(self, "_sign_bit", 1 << (bits - 1))
        object.__setattr__(self, "_modulus", 1 << bits)
        object.__setattr__(
            self, "_wrap_signed", self.signed and self.kind is OpKind.INT_ADD
        )

    def _wrap(self, value):
        """Wrap an integer result to the word width (two's complement)."""
        if self.kind is OpKind.FP_ADD:
            return float(value)
        value &= self._mask
        if self._wrap_signed and value & self._sign_bit:
            value -= self._modulus
        return value

    def apply(self, current, value):
        """Apply the operation: ``current o value``, wrapped to word width."""
        return self._wrap(self.fn(current, value))

    def reduce(self, deltas: Iterable):
        """Reduce a collection of deltas to one delta (order-independent)."""
        result = self.identity
        for delta in deltas:
            result = self.apply(result, delta)
        return result

    def is_identity(self, value) -> bool:
        """Return True if ``value`` equals the identity element."""
        return value == self.identity


def _make_specs() -> dict:
    specs = {
        CommutativeOp.ADD_I16: OperationSpec(
            CommutativeOp.ADD_I16, OpKind.INT_ADD, 2, 0, operator.add
        ),
        CommutativeOp.ADD_I32: OperationSpec(
            CommutativeOp.ADD_I32, OpKind.INT_ADD, 4, 0, operator.add
        ),
        CommutativeOp.ADD_I64: OperationSpec(
            CommutativeOp.ADD_I64, OpKind.INT_ADD, 8, 0, operator.add
        ),
        CommutativeOp.ADD_F32: OperationSpec(
            CommutativeOp.ADD_F32, OpKind.FP_ADD, 4, 0.0, operator.add
        ),
        CommutativeOp.ADD_F64: OperationSpec(
            CommutativeOp.ADD_F64, OpKind.FP_ADD, 8, 0.0, operator.add
        ),
        CommutativeOp.AND_64: OperationSpec(
            CommutativeOp.AND_64,
            OpKind.BITWISE_AND,
            8,
            (1 << 64) - 1,
            operator.and_,
            signed=False,
        ),
        CommutativeOp.OR_64: OperationSpec(
            CommutativeOp.OR_64, OpKind.BITWISE_OR, 8, 0, operator.or_, signed=False
        ),
        CommutativeOp.XOR_64: OperationSpec(
            CommutativeOp.XOR_64, OpKind.BITWISE_XOR, 8, 0, operator.xor, signed=False
        ),
    }
    return specs


_SPECS = _make_specs()

#: Every operation the hardware implementation supports, in a stable order.
ALL_OPS: Sequence[CommutativeOp] = tuple(CommutativeOp)

#: Operations whose deltas are additive (used by privatization baselines).
ADDITIVE_OPS = (
    CommutativeOp.ADD_I16,
    CommutativeOp.ADD_I32,
    CommutativeOp.ADD_I64,
    CommutativeOp.ADD_F32,
    CommutativeOp.ADD_F64,
)

#: Bitwise logical operations (single supported word size, per the paper).
BITWISE_OPS = (CommutativeOp.AND_64, CommutativeOp.OR_64, CommutativeOp.XOR_64)


def commutes_with(op_a: CommutativeOp, op_b: CommutativeOp) -> bool:
    """Return True if updates of type ``op_a`` commute with type ``op_b``.

    COUP serialises updates of *different* types (Sec. 3.2): in general two
    distinct operations do not commute with each other (e.g. ``+`` and ``*``),
    so the protocol performs a full reduction when the update type changes.
    Updates of the same type always commute.
    """
    return op_a is op_b


class DeltaBuffer:
    """Per-cache-line buffer of partial updates held in the U state.

    Each private cache line in update-only mode holds, for every word offset
    that has been updated, the accumulated delta relative to the identity
    element.  Words that were never touched implicitly hold the identity, so a
    reduction can fold the whole line element-wise (Sec. 3.2, "larger cache
    blocks").
    """

    def __init__(self, op: CommutativeOp) -> None:
        self.op = op
        self._deltas: dict = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeltaBuffer(op={self.op.value}, deltas={self._deltas})"

    def update(self, offset: int, value) -> None:
        """Accumulate ``value`` into the delta for ``offset``."""
        current = self._deltas.get(offset, self.op.identity)
        self._deltas[offset] = self.op.apply(current, value)

    def delta(self, offset: int):
        """Return the accumulated delta at ``offset`` (identity if untouched)."""
        return self._deltas.get(offset, self.op.identity)

    def touched_offsets(self):
        """Offsets that have received at least one update."""
        return sorted(self._deltas)

    def merge_into(self, line_values: dict) -> dict:
        """Fold this buffer into ``line_values`` (offset -> word value)."""
        merged = dict(line_values)
        # repro-lint: disable=D102(per-offset fold of a commutative op; the merged dict is compared by value, never by order)
        for offset, delta in self._deltas.items():
            base = merged.get(offset, self.op.identity)
            merged[offset] = self.op.apply(base, delta)
        return merged

    def is_empty(self) -> bool:
        """True if no word has been updated (all words hold the identity)."""
        return all(
            self.op.spec.is_identity(value) for value in self._deltas.values()
        ) or not self._deltas

    def clear(self) -> None:
        self._deltas.clear()


def reduce_partial_updates(
    op: CommutativeOp, base_values: dict, buffers: Sequence[DeltaBuffer]
) -> dict:
    """Fold many private-cache delta buffers into the shared-cache copy.

    This is the functional behaviour of a *full reduction*: the shared cache's
    authoritative copy (``base_values``, mapping word offset to value) is
    combined element-wise with every partial update.  Because the operation is
    commutative and associative, the order of ``buffers`` does not affect the
    result; tests assert this property explicitly.
    """
    result = dict(base_values)
    for buffer in buffers:
        if buffer.op is not op:
            raise ValueError(
                f"cannot reduce buffer of type {buffer.op} with reduction type {op}"
            )
        result = buffer.merge_into(result)
    return result
