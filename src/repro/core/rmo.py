"""Remote-memory-operation (RMO) baseline protocol engine.

RMO schemes (NYU Ultracomputer, Cray T3E, TilePro64, GPUs) ship update
operations to a fixed location — here the home shared-cache bank — instead of
caching the line at the updating core (Fig. 1b).  This avoids ping-ponging the
line between private caches, but every update still crosses the network, and
the single remote ALU at the home bank becomes a throughput bottleneck under
contention.  Reads of RMO-managed data are served from the shared cache as
well to keep the remote copies authoritative.

The paper uses RMOs as the main hardware point of comparison in Sec. 2.1
(qualitatively); this engine lets the reproduction quantify that comparison
and serves as the hardware counterpart of the delegation software baseline.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.mesi import MesiProtocol
from repro.core.protocol import SHAPE_CONFLICT, AccessOutcome
from repro.interconnect.messages import LinkScope, MessageType
from repro.sim.access import AccessType, MemoryAccess
from repro.sim.config import SystemConfig
from repro.sim.stats import LatencyBreakdown


class RmoProtocol(MesiProtocol):
    """MESI plus remote update operations executed at the home L3/L4 bank."""

    name = "RMO"
    #: Remote/commutative updates always travel to the home bank, so the
    #: batched kernel's hot mask (``HOT_COMMUTATIVE = "never"``) classifies
    #: every update slow; only loads and stores batch into hit-runs.  The
    #: bank-ALU queue (``_bank_busy_until``) is therefore only touched from
    #: the globally ordered slow path, which keeps batching bit-identical.
    HOT_COMMUTATIVE = "never"
    #: The bank-ALU queue serializes every update at its home bank, and even
    #: loads/stores can race with `_remote_update`'s requester-copy
    #: invalidations, so no RMO transaction shape is independent: group
    #: retirement stays disabled and every slow access takes the exact
    #: scalar heap order.
    SUPPORTS_SLOW_BATCH = False
    SLOW_SHAPE_TABLE = np.full((4, 5), SHAPE_CONFLICT, dtype=np.uint8)

    #: Cycles the home bank ALU is occupied per remote update.
    REMOTE_ALU_CYCLES = 4.0

    def __init__(self, config: SystemConfig, track_values: bool = True) -> None:
        super().__init__(config, track_values=track_values)
        #: Per (chip, bank) ALU availability time, modelling the hotspot.
        self._bank_busy_until: Dict[tuple, float] = {}
        self.stat_remote_updates = 0

    def _bank_key(self, line_addr: int) -> tuple:
        home_chip = self.home_l4_chip(line_addr)
        bank = self.config.l3_home_bank(line_addr)
        return (home_chip, bank)

    def _remote_update(self, core_id: int, access: MemoryAccess, now: float) -> AccessOutcome:
        """Send the update to the home bank; wait for its ALU and the ack."""
        line_addr = self.line_addr(access.address)
        outcome = AccessOutcome()
        breakdown = outcome.latency
        requester_chip = self._chip(core_id)
        home_chip = self.home_l4_chip(line_addr)

        # Any privately cached copies must be invalidated so the remote copy
        # stays authoritative (first update to a line only).
        entry = self.directory.peek(line_addr)
        if entry is not None and entry.sharers:
            count = self._invalidate_sharers(core_id, line_addr, set(entry.sharers), breakdown)
            self._invalidate_requester_copy(core_id, line_addr)
            outcome.invalidations += count
            self.directory.clear_all_sharers(line_addr)
        else:
            self._invalidate_requester_copy(core_id, line_addr)

        # Travel to the home bank (topology- and contention-aware).
        breakdown.l3 += self._onchip_hop + self._l3_latency
        if home_chip != requester_chip:
            # Remote op request + ack: a control-only exchange.
            breakdown.offchip_network += self._l4_control_rt(
                requester_chip, home_chip, line_addr, now
            )
            breakdown.l4 += self._l4_latency
            scope = LinkScope.OFF_CHIP
        else:
            scope = LinkScope.ON_CHIP
        self.interconnect.record_one(MessageType.REMOTE_OP, scope)
        self.interconnect.record_one(MessageType.ACK, scope)

        # Queue for the bank's ALU: this is the RMO hotspot.
        key = self._bank_key(line_addr)
        busy_until = self._bank_busy_until.get(key, 0.0)
        start = max(now, busy_until)
        wait = start - now
        self._bank_busy_until[key] = start + self.REMOTE_ALU_CYCLES
        breakdown.serialization += wait
        breakdown.l4_invalidations += self.REMOTE_ALU_CYCLES

        self._functional_update(access)
        self.stat_remote_updates += 1
        return outcome

    def _invalidate_requester_copy(self, core_id: int, line_addr: int) -> None:
        from repro.core.states import StableState

        if self.core_state(core_id, line_addr) is not StableState.INVALID:
            self.hierarchy.private_invalidate(core_id, line_addr)
            self._set_state(core_id, line_addr, StableState.INVALID)
            self.directory.remove_sharer(line_addr, core_id)
            self.directory.drop_if_uncached(line_addr)

    def access_hot(self, core_id: int, access: MemoryAccess, now: float):
        """RMO hot path: updates always travel to the home bank (never hit)."""
        access_type = access.access_type
        if (
            access_type is AccessType.REMOTE_UPDATE
            or access_type is AccessType.COMMUTATIVE_UPDATE
        ):
            self.current_time = now
            return self._remote_update(core_id, access, now)
        return MesiProtocol.access_hot(self, core_id, access, now)

    def resolve_slow(
        self,
        core_id: int,
        access: MemoryAccess,
        line_addr: int,
        state,
        level,
        now: float,
    ):
        access_type = access.access_type
        if (
            access_type is AccessType.REMOTE_UPDATE
            or access_type is AccessType.COMMUTATIVE_UPDATE
        ):
            # Remote updates bypass the private hierarchy entirely; no probe.
            self.current_time = now
            return self._remote_update(core_id, access, now)
        return MesiProtocol.resolve_slow(self, core_id, access, line_addr, state, level, now)
