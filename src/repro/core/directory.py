"""Directory state for MESI / MEUSI protocols.

Conventional in-cache directories track the sharer set of each line plus
whether a single sharer holds it exclusively.  COUP adds a third mode,
*update-only*, in which the sharer bit-vector tracks updaters instead of
readers, and a small per-line field records the non-exclusive operation type
(read-only or one of the commutative update types) — Sec. 3.1.1 / Sec. 3.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set

from repro.core.commutative import CommutativeOp
from repro.core.states import LineMode


@dataclass(slots=True)
class DirectoryEntry:
    """Directory state for a single cache line.

    Attributes
    ----------
    line_addr:
        Line address this entry tracks.
    mode:
        Current line mode (uncached / exclusive / read-only / update-only).
    sharers:
        Ids of the caches holding the line.  In exclusive mode this has one
        element; in read-only mode these are readers; in update-only mode
        these are updaters.
    op:
        The commutative-update type when in update-only mode (COUP's extra
        per-line type field); ``None`` otherwise.
    busy_until:
        Simulator timestamp until which the line's home is busy serialising a
        previous ownership transfer or reduction.  Used by the timing model
        to capture serialization at the directory.
    """

    line_addr: int
    mode: LineMode = LineMode.UNCACHED
    sharers: Set[int] = field(default_factory=set)
    op: Optional[CommutativeOp] = None
    busy_until: float = 0.0

    def is_consistent(self) -> bool:
        """Internal invariants any reachable directory entry must satisfy."""
        if self.mode is LineMode.UNCACHED:
            return not self.sharers and self.op is None
        if self.mode is LineMode.EXCLUSIVE:
            return len(self.sharers) == 1 and self.op is None
        if self.mode is LineMode.READ_ONLY:
            return len(self.sharers) >= 1 and self.op is None
        if self.mode is LineMode.UPDATE_ONLY:
            return len(self.sharers) >= 1 and self.op is not None
        return False

    def exclusive_owner(self) -> Optional[int]:
        """The single owner when in exclusive mode, else ``None``."""
        if self.mode is LineMode.EXCLUSIVE:
            return next(iter(self.sharers))
        return None


class Directory:
    """Sparse full-map directory: one :class:`DirectoryEntry` per tracked line.

    Entries are created on demand and discarded when a line returns to the
    uncached mode, which keeps memory proportional to the actively shared
    footprint rather than the address space.
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: Dict[int, DirectoryEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def entry(self, line_addr: int) -> DirectoryEntry:
        """Return (creating if needed) the entry for ``line_addr``."""
        entry = self._entries.get(line_addr)
        if entry is None:
            entry = DirectoryEntry(line_addr=line_addr)
            self._entries[line_addr] = entry
        return entry

    def peek(self, line_addr: int) -> Optional[DirectoryEntry]:
        """Return the entry if it exists, without creating it."""
        return self._entries.get(line_addr)

    def drop_if_uncached(self, line_addr: int) -> None:
        """Free the entry when the line is no longer cached anywhere."""
        entry = self._entries.get(line_addr)
        if entry is not None and entry.mode is LineMode.UNCACHED and not entry.sharers:
            del self._entries[line_addr]

    # -- mode transitions used by the protocol engines -----------------------

    def grant_exclusive(self, line_addr: int, cache_id: int) -> DirectoryEntry:
        """Record that ``cache_id`` now holds the line exclusively."""
        entry = self.entry(line_addr)
        entry.mode = LineMode.EXCLUSIVE
        entry.sharers = {cache_id}
        entry.op = None
        return entry

    def grant_shared(self, line_addr: int, cache_id: int) -> DirectoryEntry:
        """Add ``cache_id`` as a reader; the line becomes/stays read-only."""
        entry = self.entry(line_addr)
        if entry.mode not in (LineMode.READ_ONLY, LineMode.UNCACHED):
            raise ValueError(
                f"cannot grant shared in mode {entry.mode} for line {line_addr:#x}"
            )
        entry.mode = LineMode.READ_ONLY
        entry.sharers.add(cache_id)
        entry.op = None
        return entry

    def grant_update_only(
        self, line_addr: int, cache_id: int, op: CommutativeOp
    ) -> DirectoryEntry:
        """Add ``cache_id`` as an updater of type ``op`` (COUP's U mode)."""
        entry = self.entry(line_addr)
        if entry.mode is LineMode.UPDATE_ONLY and entry.op is not op:
            raise ValueError(
                "directory must serialise updates of different types "
                f"(line {line_addr:#x}: {entry.op} vs {op})"
            )
        if entry.mode in (LineMode.EXCLUSIVE, LineMode.READ_ONLY) and entry.sharers - {cache_id}:
            raise ValueError(
                f"cannot grant update-only while other caches hold mode {entry.mode}"
            )
        entry.mode = LineMode.UPDATE_ONLY
        entry.sharers.add(cache_id)
        entry.op = op
        return entry

    def remove_sharer(self, line_addr: int, cache_id: int) -> DirectoryEntry:
        """Drop ``cache_id`` from the sharer set (eviction or invalidation)."""
        entry = self.entry(line_addr)
        entry.sharers.discard(cache_id)
        if not entry.sharers:
            entry.mode = LineMode.UNCACHED
            entry.op = None
        elif entry.mode is LineMode.EXCLUSIVE:
            # Exclusive with no remaining owner is impossible; with a different
            # owner remaining it would indicate a protocol bug.
            entry.mode = LineMode.UNCACHED if not entry.sharers else entry.mode
        return entry

    def clear_all_sharers(self, line_addr: int) -> Set[int]:
        """Invalidate every sharer and return the set that was invalidated."""
        entry = self.entry(line_addr)
        invalidated = set(entry.sharers)
        entry.sharers.clear()
        entry.mode = LineMode.UNCACHED
        entry.op = None
        return invalidated

    def check_invariants(self) -> None:
        """Raise if any entry violates its internal invariants."""
        # repro-lint: disable=D102(pure invariant assertion pass; raises or does nothing, no result flows out)
        for entry in self._entries.values():
            if not entry.is_consistent():
                raise AssertionError(f"inconsistent directory entry: {entry}")

    def entries(self) -> Iterable[DirectoryEntry]:
        return self._entries.values()

    def storage_bits_per_line(self, n_caches: int, n_ops: int = 8) -> int:
        """Directory storage per line in bits.

        A conventional full-map MESI directory needs a sharer bit-vector plus
        one bit distinguishing exclusive from read-only when there is a single
        sharer.  COUP reuses the sharer vector for updaters and adds a type
        field able to encode read-only plus ``n_ops`` update types (4 bits for
        the paper's 8 ops) — matching the hardware-overhead discussion in
        Sec. 3.1.1 and Sec. 5.1.
        """
        type_field_bits = max(1, (n_ops + 1 - 1).bit_length())
        return n_caches + 1 + type_field_bits
