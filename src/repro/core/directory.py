"""Directory state for MESI / MEUSI protocols.

Conventional in-cache directories track the sharer set of each line plus
whether a single sharer holds it exclusively.  COUP adds a third mode,
*update-only*, in which the sharer bit-vector tracks updaters instead of
readers, and a small per-line field records the non-exclusive operation type
(read-only or one of the commutative update types) — Sec. 3.1.1 / Sec. 3.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set

import numpy as np

from repro.core.commutative import ALL_OPS, CommutativeOp
from repro.core.states import LineMode


@dataclass(slots=True)
class DirectoryEntry:
    """Directory state for a single cache line.

    Attributes
    ----------
    line_addr:
        Line address this entry tracks.
    mode:
        Current line mode (uncached / exclusive / read-only / update-only).
    sharers:
        Ids of the caches holding the line.  In exclusive mode this has one
        element; in read-only mode these are readers; in update-only mode
        these are updaters.
    op:
        The commutative-update type when in update-only mode (COUP's extra
        per-line type field); ``None`` otherwise.
    busy_until:
        Simulator timestamp until which the line's home is busy serialising a
        previous ownership transfer or reduction.  Used by the timing model
        to capture serialization at the directory.
    """

    line_addr: int
    mode: LineMode = LineMode.UNCACHED
    sharers: Set[int] = field(default_factory=set)
    op: Optional[CommutativeOp] = None
    busy_until: float = 0.0

    def is_consistent(self) -> bool:
        """Internal invariants any reachable directory entry must satisfy."""
        if self.mode is LineMode.UNCACHED:
            return not self.sharers and self.op is None
        if self.mode is LineMode.EXCLUSIVE:
            return len(self.sharers) == 1 and self.op is None
        if self.mode is LineMode.READ_ONLY:
            return len(self.sharers) >= 1 and self.op is None
        if self.mode is LineMode.UPDATE_ONLY:
            return len(self.sharers) >= 1 and self.op is not None
        return False

    def exclusive_owner(self) -> Optional[int]:
        """The single owner when in exclusive mode, else ``None``."""
        if self.mode is LineMode.EXCLUSIVE:
            return next(iter(self.sharers))
        return None


class Directory:
    """Sparse full-map directory: one :class:`DirectoryEntry` per tracked line.

    Entries are created on demand and discarded when a line returns to the
    uncached mode, which keeps memory proportional to the actively shared
    footprint rather than the address space.
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: Dict[int, DirectoryEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def entry(self, line_addr: int) -> DirectoryEntry:
        """Return (creating if needed) the entry for ``line_addr``."""
        entry = self._entries.get(line_addr)
        if entry is None:
            entry = DirectoryEntry(line_addr=line_addr)
            self._entries[line_addr] = entry
        return entry

    def peek(self, line_addr: int) -> Optional[DirectoryEntry]:
        """Return the entry if it exists, without creating it."""
        return self._entries.get(line_addr)

    def drop_if_uncached(self, line_addr: int) -> None:
        """Free the entry when the line is no longer cached anywhere."""
        entry = self._entries.get(line_addr)
        if entry is not None and entry.mode is LineMode.UNCACHED and not entry.sharers:
            del self._entries[line_addr]

    # -- mode transitions used by the protocol engines -----------------------

    def grant_exclusive(self, line_addr: int, cache_id: int) -> DirectoryEntry:
        """Record that ``cache_id`` now holds the line exclusively."""
        entry = self.entry(line_addr)
        entry.mode = LineMode.EXCLUSIVE
        entry.sharers = {cache_id}
        entry.op = None
        return entry

    def grant_shared(self, line_addr: int, cache_id: int) -> DirectoryEntry:
        """Add ``cache_id`` as a reader; the line becomes/stays read-only."""
        entry = self.entry(line_addr)
        if entry.mode not in (LineMode.READ_ONLY, LineMode.UNCACHED):
            raise ValueError(
                f"cannot grant shared in mode {entry.mode} for line {line_addr:#x}"
            )
        entry.mode = LineMode.READ_ONLY
        entry.sharers.add(cache_id)
        entry.op = None
        return entry

    def grant_update_only(
        self, line_addr: int, cache_id: int, op: CommutativeOp
    ) -> DirectoryEntry:
        """Add ``cache_id`` as an updater of type ``op`` (COUP's U mode)."""
        entry = self.entry(line_addr)
        if entry.mode is LineMode.UPDATE_ONLY and entry.op is not op:
            raise ValueError(
                "directory must serialise updates of different types "
                f"(line {line_addr:#x}: {entry.op} vs {op})"
            )
        if entry.mode in (LineMode.EXCLUSIVE, LineMode.READ_ONLY) and entry.sharers - {cache_id}:
            raise ValueError(
                f"cannot grant update-only while other caches hold mode {entry.mode}"
            )
        entry.mode = LineMode.UPDATE_ONLY
        entry.sharers.add(cache_id)
        entry.op = op
        return entry

    def remove_sharer(self, line_addr: int, cache_id: int) -> DirectoryEntry:
        """Drop ``cache_id`` from the sharer set (eviction or invalidation)."""
        entry = self.entry(line_addr)
        entry.sharers.discard(cache_id)
        if not entry.sharers:
            entry.mode = LineMode.UNCACHED
            entry.op = None
        elif entry.mode is LineMode.EXCLUSIVE:
            # The only sharer of an exclusive line is its owner, so removing a
            # *different* cache while an owner remains means some engine asked
            # to evict a cache that never held the line — a protocol bug that
            # previously slipped through as a silent no-op.
            raise ValueError(
                f"remove_sharer({line_addr:#x}, {cache_id}) in exclusive mode: "
                f"owner {next(iter(entry.sharers))} still holds the line"
            )
        return entry

    def clear_all_sharers(self, line_addr: int) -> Set[int]:
        """Invalidate every sharer and return the set that was invalidated."""
        entry = self.entry(line_addr)
        invalidated = set(entry.sharers)
        entry.sharers.clear()
        entry.mode = LineMode.UNCACHED
        entry.op = None
        return invalidated

    def check_invariants(self) -> None:
        """Raise if any entry violates its internal invariants."""
        # repro-lint: disable=D102(pure invariant assertion pass; raises or does nothing, no result flows out)
        for entry in self._entries.values():
            if not entry.is_consistent():
                raise AssertionError(f"inconsistent directory entry: {entry}")

    def entries(self) -> Iterable[DirectoryEntry]:
        return self._entries.values()

    def storage_bits_per_line(self, n_caches: int, n_ops: int = 8) -> int:
        """Directory storage per line in bits.

        A conventional full-map MESI directory needs a sharer bit-vector plus
        one bit distinguishing exclusive from read-only when there is a single
        sharer.  COUP reuses the sharer vector for updaters and adds a type
        field able to encode read-only plus ``n_ops`` update types (4 bits for
        the paper's 8 ops) — matching the hardware-overhead discussion in
        Sec. 3.1.1 and Sec. 5.1.
        """
        type_field_bits = max(1, (n_ops + 1 - 1).bit_length())
        return n_caches + 1 + type_field_bits


# -- flat array mirror (batched-kernel classification) -------------------------

#: :class:`DirectoryArray` mode codes (uint8), mirroring :class:`LineMode`.
MODE_UNCACHED = 0
MODE_EXCLUSIVE = 1
MODE_READ_ONLY = 2
MODE_UPDATE_ONLY = 3

#: ``op`` code for "no commutative op recorded" (mirrors ``UOP_NONE``).
DIR_OP_NONE = 255

_MODE_CODE = {
    LineMode.UNCACHED: MODE_UNCACHED,
    LineMode.EXCLUSIVE: MODE_EXCLUSIVE,
    LineMode.READ_ONLY: MODE_READ_ONLY,
    LineMode.UPDATE_ONLY: MODE_UPDATE_ONLY,
}

_OP_CODE = {op: index for index, op in enumerate(ALL_OPS)}


class DirectoryArray:
    """Flat NumPy mirror of :class:`Directory` state for bulk classification.

    The batched kernel's group-retirement stage (:mod:`repro.sim.kernel`)
    needs to ask, for a whole stretch of pending slow accesses at once,
    "which transaction shape would each of these trigger?".  Walking the
    object directory per access from Python defeats the point, so this
    mirror keeps the classification-relevant per-line state — mode code,
    op code, sharer count, sharer bit-vector words, and ``busy_until`` —
    in flat arrays keyed by a line-index table, the same pattern
    :class:`~repro.hierarchy.cache.TagArray` uses for private-tag state.

    Coherency follows the ``protocol.touched_cores`` discipline: rows are
    pulled lazily from the object directory on first use, and the kernel
    calls :meth:`invalidate_line` for every line a slow-path transaction
    touched, which marks the row stale so the next lookup re-pulls it.
    The mirror is advisory — retirement always revalidates against the
    object :class:`Directory` — so a stale row can cost a declined group,
    never a wrong result.
    """

    __slots__ = (
        "n_caches",
        "n_words",
        "_index",
        "capacity",
        "size",
        "lines",
        "mode",
        "op",
        "n_sharers",
        "busy_until",
        "sharers",
    )

    def __init__(self, n_caches: int, capacity: int = 256) -> None:
        self.n_caches = n_caches
        self.n_words = max(1, (n_caches + 63) // 64)
        self._index: Dict[int, int] = {}
        self.capacity = max(16, capacity)
        self.size = 0
        self._allocate(self.capacity)

    def _allocate(self, capacity: int) -> None:
        self.lines = np.zeros(capacity, dtype=np.int64)
        self.mode = np.zeros(capacity, dtype=np.uint8)
        self.op = np.full(capacity, DIR_OP_NONE, dtype=np.uint8)
        self.n_sharers = np.zeros(capacity, dtype=np.int32)
        self.busy_until = np.zeros(capacity, dtype=np.float64)
        self.sharers = np.zeros((capacity, self.n_words), dtype=np.uint64)

    def _grow(self) -> None:
        old = (self.lines, self.mode, self.op, self.n_sharers, self.busy_until, self.sharers)
        self.capacity *= 2
        self._allocate(self.capacity)
        n = self.size
        for new, prev in zip(
            (self.lines, self.mode, self.op, self.n_sharers, self.busy_until, self.sharers),
            old,
        ):
            new[:n] = prev[:n]

    # -- row maintenance -------------------------------------------------------

    def _fill_row(self, row: int, entry: Optional[DirectoryEntry]) -> None:
        if entry is None:
            self.mode[row] = MODE_UNCACHED
            self.op[row] = DIR_OP_NONE
            self.n_sharers[row] = 0
            self.busy_until[row] = 0.0
            self.sharers[row, :] = 0
            return
        self.mode[row] = _MODE_CODE[entry.mode]
        self.op[row] = DIR_OP_NONE if entry.op is None else _OP_CODE[entry.op]
        self.n_sharers[row] = len(entry.sharers)
        self.busy_until[row] = entry.busy_until
        words = [0] * self.n_words
        for cache_id in entry.sharers:
            words[cache_id >> 6] |= 1 << (cache_id & 63)
        for word_index, word in enumerate(words):
            self.sharers[row, word_index] = word

    def row_of(self, line_addr: int, directory: Directory) -> int:
        """Row holding ``line_addr``'s mirrored state, pulling it if absent."""
        row = self._index.get(line_addr)
        if row is None:
            if self.size == self.capacity:
                self._grow()
            row = self.size
            self.size = row + 1
            self._index[line_addr] = row
            self.lines[row] = line_addr
            self._fill_row(row, directory.peek(line_addr))
        return row

    def invalidate_line(self, line_addr: int, directory: Directory) -> None:
        """Resync one line's row after a transaction touched it."""
        row = self._index.get(line_addr)
        if row is not None:
            self._fill_row(row, directory.peek(line_addr))

    def sync_lines(self, line_addrs: Iterable[int], directory: Directory) -> None:
        """Resync every given line (the slow-path boundary resync)."""
        for line_addr in line_addrs:
            self.invalidate_line(line_addr, directory)

    def rows_for(self, line_addrs, directory: Directory) -> np.ndarray:
        """Rows for a vector of line addresses (creating rows as needed)."""
        row_of = self.row_of
        return np.fromiter(
            (row_of(int(line), directory) for line in line_addrs),
            dtype=np.int64,
            count=len(line_addrs),
        )

    def is_sharer(self, row: int, cache_id: int) -> bool:
        return bool(self.sharers[row, cache_id >> 6] >> np.uint64(cache_id & 63) & np.uint64(1))

    def sharer_sets_disjoint(self, rows: np.ndarray) -> bool:
        """Whether the given rows' sharer bit-vectors are pairwise disjoint.

        Pairwise disjointness over k rows reduces to "no bit is set twice",
        checked word-parallel: OR-accumulating the vectors equals XOR-
        accumulating them iff no two vectors share a bit.
        """
        vectors = self.sharers[rows]
        ored = np.bitwise_or.reduce(vectors, axis=0)
        xored = np.bitwise_xor.reduce(vectors, axis=0)
        return bool((ored == xored).all())

    # -- invariants ------------------------------------------------------------

    def check_invariants(self, directory: Directory) -> None:
        """Raise if any mirrored row disagrees with the object directory."""
        # repro-lint: disable=D102(pure invariant assertion pass; raises or does nothing, no result flows out)
        for line_addr, row in self._index.items():
            entry = directory.peek(line_addr)
            mode = MODE_UNCACHED if entry is None else _MODE_CODE[entry.mode]
            if int(self.mode[row]) != mode:
                raise AssertionError(
                    f"mirror mode {int(self.mode[row])} != {mode} for line {line_addr:#x}"
                )
            sharers = set() if entry is None else entry.sharers
            if int(self.n_sharers[row]) != len(sharers):
                raise AssertionError(
                    f"mirror sharer count {int(self.n_sharers[row])} != "
                    f"{len(sharers)} for line {line_addr:#x}"
                )
            for cache_id in range(self.n_caches):
                if self.is_sharer(row, cache_id) != (cache_id in sharers):
                    raise AssertionError(
                        f"mirror sharer bit {cache_id} wrong for line {line_addr:#x}"
                    )
            op_code = DIR_OP_NONE if entry is None or entry.op is None else _OP_CODE[entry.op]
            if int(self.op[row]) != op_code:
                raise AssertionError(f"mirror op wrong for line {line_addr:#x}")
            busy = 0.0 if entry is None else entry.busy_until
            if float(self.busy_until[row]) != busy:
                raise AssertionError(f"mirror busy_until wrong for line {line_addr:#x}")
