"""Reduction unit model: the small ALU COUP adds to each shared cache bank.

The reduction unit performs the element-wise fold of partial updates during
partial and full reductions (Sec. 3.1.1).  It has two roles here:

* **functional** — fold :class:`~repro.core.commutative.DeltaBuffer` contents
  into the authoritative line value, so simulations produce correct results
  that tests can compare against a sequential reference, and
* **timing** — charge latency/occupancy per reduced line, so the Sec. 5.5
  sensitivity study (256-bit pipelined vs. 64-bit unpipelined ALU) can be
  reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.commutative import CommutativeOp, DeltaBuffer, reduce_partial_updates
from repro.sim.config import ReductionUnitConfig


@dataclass(slots=True)
class ReductionTiming:
    """Timing outcome of a reduction at one reduction unit."""

    #: Critical-path latency added by the ALU itself.
    latency: int
    #: Cycles the unit is occupied (throughput cost; relevant under contention).
    occupancy: int
    #: Number of partial updates folded.
    n_partials: int


class ReductionUnit:
    """A reduction ALU attached to a shared cache bank.

    The unit processes one source line (one private cache's partial update, or
    the bank's own copy) per ``cycles_per_line`` cycles, with a pipeline
    latency of ``latency_per_line``.  A reduction of ``k`` partial updates
    therefore occupies the unit for ``k * cycles_per_line`` cycles and adds
    ``latency_per_line + (k - 1) * cycles_per_line`` cycles of critical-path
    latency when pipelined (or ``k * latency_per_line`` when not).
    """

    __slots__ = ("config", "name", "busy_until", "lines_reduced", "reductions")

    def __init__(self, config: Optional[ReductionUnitConfig] = None, name: str = "rdu") -> None:
        self.config = config or ReductionUnitConfig()
        self.name = name
        #: Simulator timestamp until which the unit is busy (occupancy model).
        self.busy_until: float = 0.0
        #: Total lines reduced (statistics).
        self.lines_reduced: int = 0
        #: Total reductions performed.
        self.reductions: int = 0

    # -- timing ---------------------------------------------------------------

    def timing_for(self, n_partials: int) -> ReductionTiming:
        """Latency and occupancy of folding ``n_partials`` partial updates."""
        if n_partials <= 0:
            return ReductionTiming(latency=0, occupancy=0, n_partials=0)
        cfg = self.config
        occupancy = n_partials * cfg.cycles_per_line
        if cfg.pipelined:
            latency = cfg.latency_per_line + (n_partials - 1) * cfg.cycles_per_line
        else:
            latency = n_partials * cfg.latency_per_line
        return ReductionTiming(latency=latency, occupancy=occupancy, n_partials=n_partials)

    def schedule(self, now: float, n_partials: int) -> ReductionTiming:
        """Account a reduction starting no earlier than ``now``.

        Returns the timing including any wait for the unit to become free; the
        unit's ``busy_until`` advances by the occupancy.
        """
        timing = self.timing_for(n_partials)
        if timing.n_partials == 0:
            return timing
        start = max(now, self.busy_until)
        wait = start - now
        self.busy_until = start + timing.occupancy
        self.lines_reduced += n_partials
        self.reductions += 1
        return ReductionTiming(
            latency=int(wait) + timing.latency,
            occupancy=timing.occupancy,
            n_partials=n_partials,
        )

    # -- function -------------------------------------------------------------

    @staticmethod
    def reduce_values(
        op: CommutativeOp,
        base_values: Dict[int, object],
        buffers: Sequence[DeltaBuffer],
    ) -> Dict[int, object]:
        """Functionally fold partial updates into the authoritative copy."""
        return reduce_partial_updates(op, base_values, buffers)

    def reset_statistics(self) -> None:
        self.busy_until = 0.0
        self.lines_reduced = 0
        self.reductions = 0


def hierarchical_reduction_ops(fanouts: Iterable[int]) -> int:
    """Critical-path operation count of a hierarchical reduction.

    Sec. 3.2's example: a 128-core system with a fully shared L4 and eight
    per-socket L3s, each shared by 16 cores, performs ``8 + 16 = 24``
    operations on the critical path instead of 128 for a flat organisation.
    ``fanouts`` lists the fan-out at each level from the root downwards, e.g.
    ``[8, 16]``.
    """
    return sum(int(f) for f in fanouts)


def flat_reduction_ops(n_sharers: int) -> int:
    """Critical-path operation count of a flat (non-hierarchical) reduction."""
    return int(n_sharers)
