"""Abstract coherence protocol interface used by the timing simulator.

A protocol engine owns all coherence state for one simulation run: per-core
private line states, directory entries, reduction units, and the functional
memory image used to check results.  The simulator hands it one access at a
time (in global-time order) and receives an :class:`AccessOutcome` describing
the critical-path latency (broken down by level), the traffic generated, and
the coherence actions taken.

Protocol engines resolve each access atomically against *stable* states; the
transient-state machinery needed for correctness on an unordered network is
modelled and verified separately in :mod:`repro.verification`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

import numpy as np

from repro import obs as _obs
from repro.core.commutative import CommutativeOp
from repro.core.directory import Directory
from repro.core.reduction import ReductionUnit
from repro.hierarchy.system import CacheHierarchy
from repro.interconnect.network import InterconnectModel
from repro.sim.access import MemoryAccess
from repro.sim.config import SystemConfig
from repro.sim.stats import LatencyBreakdown

#: :attr:`CoherenceProtocol.SLOW_SHAPE_TABLE` codes.  ``SHAPE_FAST`` marks a
#: (mode, kind) pair the engine retires through its flattened group path;
#: ``SHAPE_OP_DEPENDENT`` marks a pair that is fast only when the access's op
#: matches the directory entry's op (COUP's same-op U-line joins); and
#: ``SHAPE_CONFLICT`` marks a true conflict (ownership hand-offs the engine
#: declines, cross-op serialization, reduction triggers) that must fall back
#: to the exact scalar ``(clock, core_id)`` order through ``resolve_slow``.
SHAPE_FAST = 0
SHAPE_OP_DEPENDENT = 1
SHAPE_CONFLICT = 2


@dataclass(slots=True)
class AccessOutcome:
    """Result of resolving one memory access against the protocol."""

    latency: LatencyBreakdown = field(default_factory=LatencyBreakdown)
    #: Value returned to the core (loads and atomics only; None otherwise).
    value: object = None
    #: Whether the access hit in the private hierarchy without protocol action.
    private_hit: bool = False
    #: Number of sharers invalidated or downgraded on the critical path.
    invalidations: int = 0
    #: Whether a full reduction was performed to satisfy this access.
    full_reduction: bool = False

    @property
    def total_latency(self) -> float:
        return self.latency.total


class CoherenceProtocol(abc.ABC):
    """Base class for the stable-state protocol engines (MESI, MEUSI, RMO)."""

    #: Human-readable protocol name used in results and experiment tables.
    name: str = "abstract"

    #: Whether the timing simulator may resolve private hits against this
    #: engine's tables inline (see :meth:`resolve_slow` for the contract).
    SUPPORTS_INLINE_FAST_PATH: bool = False

    #: Whether the batched columnar kernel (:mod:`repro.sim.kernel`) may
    #: classify whole chunks of accesses against this engine's tables via
    #: :meth:`hot_mask` and advance hit-runs without per-access protocol
    #: calls.  Requires :attr:`SUPPORTS_INLINE_FAST_PATH` (the kernel drops
    #: into the same inline/`resolve_slow` machinery at run boundaries).
    SUPPORTS_BATCH_KERNEL: bool = False

    #: How the hot path treats commutative/remote updates: ``"atomic"`` folds
    #: them into atomic read-modify-writes (MESI), ``"local"`` applies COUP's
    #: update-only rules (MEUSI), ``"never"`` forces the slow path (RMO).
    HOT_COMMUTATIVE: str = "atomic"

    #: Whether the batched kernel's group-retirement stage may hand this
    #: engine stretches of consecutive pending slow accesses via
    #: :meth:`resolve_slow_batch`.  Engines that set this True MUST implement
    #: :meth:`resolve_slow_batch`; engines that leave it False must not
    #: (repro-lint P202 checks the flag <=> method-presence contract).
    SUPPORTS_SLOW_BATCH: bool = False

    #: Independence classification of (directory mode, access kind) pairs for
    #: the group-retirement stage, as a 4x5 table of :data:`SHAPE_FAST` /
    #: :data:`SHAPE_OP_DEPENDENT` / :data:`SHAPE_CONFLICT` codes indexed by
    #: :data:`repro.core.directory.MODE_UNCACHED`-family mode codes and
    #: :data:`repro.sim.columnar.CODE_KIND` kinds.  Engines that participate
    #: override this with their protocol's table; the base marks everything
    #: a conflict (nothing may be group-retired).
    SLOW_SHAPE_TABLE: np.ndarray = np.full((4, 5), 2, dtype=np.uint8)

    def __init__(self, config: SystemConfig, track_values: bool = True) -> None:
        self.config = config
        self.track_values = track_values
        self.hierarchy = CacheHierarchy(config)
        self.directory = Directory()
        self.interconnect: InterconnectModel = self.hierarchy.interconnect
        # -- hot-path tables, computed once per run ---------------------------
        # The per-access resolution path must not recompute config-derived
        # quantities; everything it needs is hoisted here.
        if config.line_bytes & (config.line_bytes - 1):
            raise ValueError("line_bytes must be a power of two")
        #: ``addr >> _line_shift`` == ``config.line_address(addr)``.
        self._line_shift = config.line_bytes.bit_length() - 1
        #: Chip hosting each core, as a flat table (no bounds check, no division).
        self._chip_of_core = [
            core // config.cores_per_chip for core in range(config.n_cores)
        ]
        self._onchip_hop = self.interconnect.onchip_hop_latency()
        self._offchip_round_trip = self.interconnect.offchip_round_trip()
        # Per-pair off-chip latency hooks.  Engines call
        # ``self._l4_rt(chip, l4_chip, line_addr, now)`` for a demand-fetch
        # chip <-> home-L4 round trip, ``self._l4_control_rt(...)`` for a
        # control-only exchange (invalidate/ack, remote op/ack),
        # ``self._l4_partial(...)`` for a reduction gather (data travels
        # chip -> L4), and ``self._chip_rt(src, dst, now)`` for a chip <->
        # chip transfer.  All three L4 kinds share one base latency; they
        # differ only in the bytes the contention model occupies links with.
        # With contention disabled every hook is a pure table lookup (under
        # the default dancehall every entry equals the original fixed
        # constants, so results are bit-identical to the pre-topology
        # model); with contention enabled they also accumulate epoch
        # occupancy and fold the queueing surcharge into the latency.
        contention = self.interconnect.contention
        if contention is not None:
            self._l4_rt = contention.l4_round_trip
            self._l4_control_rt = contention.l4_control_round_trip
            self._l4_partial = contention.l4_partial_update
            self._chip_rt = contention.chip_transfer
        else:
            l4_table = self.interconnect.l4_round_trip_table
            chip_table = self.interconnect.chip_transfer_table
            self._l4_rt = lambda chip, l4, line_addr, now: l4_table[chip][l4]
            self._l4_control_rt = self._l4_rt
            self._l4_partial = self._l4_rt
            self._chip_rt = lambda src, dst, now: chip_table[src][dst]
        self._l1_latency = config.l1d.latency
        self._l2_latency = config.l2.latency
        self._l3_latency = config.l3.latency
        self._l4_latency = config.l4.latency
        self._l1_caches = self.hierarchy.l1
        self._l2_caches = self.hierarchy.l2
        self._l3_caches = self.hierarchy.l3
        self._l4_caches = self.hierarchy.l4
        self._memory = self.hierarchy.memory
        self._n_l4_chips = config.n_l4_chips
        #: One reduction unit per L3 bank per chip plus one per L4 bank.
        self.l3_reduction_units = {
            (chip, bank): ReductionUnit(config.reduction_unit, name=f"rdu.l3.{chip}.{bank}")
            for chip in range(config.n_chips)
            for bank in range(config.l3.banks)
        }
        self.l4_reduction_units = {
            (chip, bank): ReductionUnit(config.reduction_unit, name=f"rdu.l4.{chip}.{bank}")
            for chip in range(config.n_l4_chips)
            for bank in range(config.l4.banks)
        }
        #: Functional memory image: word address -> value.
        self.memory_image: Dict[int, object] = {}
        #: When the batched kernel runs, this holds a set that every
        #: cross-core stable-state mutation (``MesiProtocol._set_state``)
        #: records ``(core_id, line_addr)`` pairs into, so the kernel knows
        #: which tag-mirror entries and chunk classifications a slow-path
        #: action invalidated.  ``None`` (the default) disables the
        #: bookkeeping for the scalar paths.
        self.touched_cores: Optional[Set] = None
        #: Simulator time of the access currently being resolved; protocol
        #: engines set this at the top of :meth:`access` so internal helpers
        #: (evictions, reductions) can schedule shared resources correctly.
        self.current_time: float = 0.0
        # Aggregate statistics (also mirrored in SimulationResult).
        self.stat_invalidations = 0
        self.stat_downgrades = 0
        self.stat_full_reductions = 0
        self.stat_partial_reductions = 0
        #: Telemetry hook (``repro.obs``): ``None`` when ``REPRO_OBS=off``.
        #: Engines may ``self.obs.inc(...)`` on their own slow paths (guarded
        #: on ``is not None``); the simulator folds the run's aggregate
        #: protocol statistics through :meth:`obs_fold_stats` at finish.
        #: Write-only from the simulation's point of view — nothing here is
        #: ever read back into a SimulationResult.
        self.obs = _obs.get_registry()

    # -- functional memory image ----------------------------------------------

    def read_word(self, address: int):
        """Current architectural value of a word (after any pending reduction).

        Note: callers must have triggered the protocol-level reduction first;
        this only consults the committed memory image.
        """
        return self.memory_image.get(address, 0)

    def _write_word(self, address: int, value) -> None:
        if self.track_values and value is not None:
            self.memory_image[address] = value

    def _apply_update(self, address: int, op: CommutativeOp, value) -> None:
        if not self.track_values or value is None:
            return
        current = self.memory_image.get(address, op.identity if address not in self.memory_image else 0)
        if address not in self.memory_image:
            current = 0 if op.identity == 0 or isinstance(op.identity, float) else op.identity
        self.memory_image[address] = op.apply(current, value)

    # -- telemetry -------------------------------------------------------------

    def obs_fold_stats(self) -> None:
        """Fold the run's protocol-level aggregates into the obs registry.

        Called once by the simulator when a run finishes (after the result
        statistics are final), so telemetry reports carry protocol context
        — invalidation/downgrade/reduction volume — next to the kernel's
        phase timings.  One-way: the registry is never read back.
        """
        reg = self.obs
        if reg is None:
            return
        reg.inc("protocol.invalidations", self.stat_invalidations)
        reg.inc("protocol.downgrades", self.stat_downgrades)
        reg.inc("protocol.full_reductions", self.stat_full_reductions)
        reg.inc("protocol.partial_reductions", self.stat_partial_reductions)

    # -- protocol interface ----------------------------------------------------

    @abc.abstractmethod
    def access(self, core_id: int, access: MemoryAccess, now: float) -> AccessOutcome:
        """Resolve one access issued by ``core_id`` at simulator time ``now``."""

    def access_hot(self, core_id: int, access: MemoryAccess, now: float):
        """Hot-path form of :meth:`access`.

        Returns ``1`` (L1 private hit) or ``2`` (L2 private hit) when the
        access was satisfied entirely within the core's private hierarchy —
        all protocol state, functional values, and cache statistics already
        updated — so the caller can charge the fixed private-hit latency
        without any :class:`AccessOutcome` allocation.  Any access that needs
        directory or transaction machinery returns the full outcome instead.
        """
        return self.access(core_id, access, now)

    def resolve_slow(
        self,
        core_id: int,
        access: MemoryAccess,
        line_addr: int,
        state,
        level,
        now: float,
    ) -> AccessOutcome:
        """Resolve an access the simulator's inline fast path rejected.

        When :attr:`SUPPORTS_INLINE_FAST_PATH` is true, the timing simulator
        replicates the private-hit rules against this engine's tables
        (``core_states``, the private cache arrays, and for MEUSI the
        directory's update-only entries) and only calls this method for
        accesses that need transaction machinery.  ``state`` is the core's
        stable state for the line (``None`` if untracked) and ``level`` is
        the private-lookup result if the simulator already probed the
        caches — or ``None`` if it did not, in which case the probe must
        happen here so lookup statistics and LRU state advance exactly once
        per access.
        """
        raise NotImplementedError

    def slow_batch_ready(self) -> bool:
        """Whether group retirement may run for this engine *this run*.

        :attr:`SUPPORTS_SLOW_BATCH` is the static participation flag; this is
        the per-run precondition.  The flattened retirement paths replicate
        the contention-free latency tables, so a run with the interconnect
        contention model enabled (epoch state mutated per off-chip hook call)
        must take the scalar ``resolve_slow`` path for every slow access.

        Engines that set :attr:`SUPPORTS_SLOW_BATCH` implement
        ``resolve_slow_batch(slot_cores, slot_codes, slot_addrs, slot_gaps,
        slot_deltas, slot_cursor, slot_limit, slot_clock, slot_stats,
        slot_dirty, streak_cap, max_retire)``: a k-way merge over one slot
        per runnable core (raw column objects plus a cursor/limit/clock
        triple each) that retires accesses in the **canonical order** — the
        exact ascending ``(clock, core id)`` order of the scalar scheduler's
        heap — until every live slot is *parked* on a conflict-shaped access
        and the earliest parked event is next in that order, or a cap trips
        (``streak_cap`` consecutive private hits, ``max_retire`` total).
        Parking happens *before* any mutation for the parked access.  The
        engine writes retired cursors/clocks back into the slot lists, sets
        ``slot_dirty[s]`` for any slot whose private-cache **membership**
        changed (fills, evictions, promotions — L1-hit LRU refreshes do not
        count), and returns ``(retired, n_slow, n_parked)``.  Every retired
        access must be bit-identical — same statistics, directory/cache
        mutations, traffic, and functional values — to what the scalar
        loop's probe + ``resolve_slow`` sequence would have produced at the
        same position, and touched (core, line) pairs must be reported
        through :attr:`touched_cores` exactly as the scalar path does.
        """
        return self.SUPPORTS_SLOW_BATCH and self.interconnect.contention is None

    def hot_mask(
        self,
        kinds: np.ndarray,
        member: np.ndarray,
        states: np.ndarray,
        uops: Optional[np.ndarray],
        op_index: np.ndarray,
    ) -> np.ndarray:
        """Vectorized twin of the inline private-hit rules (batch contract).

        Given one chunk of a core's columnar trace, return a boolean array
        marking the accesses the engine would satisfy entirely within the
        core's private L1 with **no** protocol action — exactly the accesses
        the simulator's inline fast path resolves without calling
        :meth:`resolve_slow`.  Inputs are parallel arrays over the chunk:

        ``kinds``
            Access kind per :data:`repro.sim.columnar.CODE_KIND`.
        ``member``
            Whether the line is L1-resident (from the core's
            :class:`~repro.hierarchy.cache.TagArray` mirror).
        ``states``
            The core's stable-state code for the line
            (``repro.hierarchy.cache.STATE_*``; 0 when absent/untracked).
        ``uops``
            For ``STATE_UPDATE`` lines, the directory entry's op index when
            same-type updates may buffer locally (else ``UOP_NONE``).
            ``None`` unless :attr:`HOT_COMMUTATIVE` is ``"local"``.
        ``op_index``
            The access's own op index (:data:`repro.sim.columnar.CODE_OP_INDEX`).

        The generic implementation is driven by :attr:`HOT_COMMUTATIVE`, the
        same switch the inline path uses, so the MESI family shares it:
        loads hit on S/E/M, stores and atomics on E/M, and commutative or
        remote updates follow the engine's folding rule.  MEUSI's
        update-state lines classify hot only for matching-op buffering;
        everything touching reduction units classifies slow.  Engines with
        different stable-state semantics must override this together with
        :attr:`SUPPORTS_BATCH_KERNEL`.
        """
        from repro.hierarchy.cache import (
            STATE_EXCLUSIVE,
            STATE_MODIFIED,
            STATE_UPDATE,
            UOP_NONE,
        )
        from repro.sim.columnar import KIND_LOAD, KIND_COMMUTATIVE

        writable = member & ((states == STATE_EXCLUSIVE) | (states == STATE_MODIFIED))
        readable = member & (states != 0) & (states != STATE_UPDATE)
        hot = np.where(kinds == KIND_LOAD, readable, writable)
        commutative = kinds >= KIND_COMMUTATIVE
        if self.HOT_COMMUTATIVE == "never":
            hot &= ~commutative
        elif self.HOT_COMMUTATIVE == "local":
            update_ok = (
                member
                & (states == STATE_UPDATE)
                & (uops != UOP_NONE)
                & (uops == op_index)
            )
            hot |= commutative & update_ok
        return hot

    def finalize(self) -> None:
        """Flush protocol state at the end of a run.

        MEUSI overrides this to reduce any outstanding update-only lines so
        that the functional memory image reflects all buffered deltas.
        """

    def _private_level(self, core_id: int, line_addr: int) -> int:
        """Private L1/L2 lookup with the L1 probe inlined (hot path).

        Behaviourally identical to
        :meth:`repro.hierarchy.system.CacheHierarchy.private_lookup_level`
        (same hit/miss counters, same LRU refresh, same L1 refill on an L2
        hit) but with the overwhelmingly common L1 hit resolved without any
        intermediate calls.  Returns 1 (L1 hit), 2 (L2 hit), or 0 (miss).

        WARNING: this probe is intentionally hand-duplicated in THREE places
        for speed — here, ``CacheHierarchy.private_lookup_level``, and the
        inline block in ``MulticoreSimulator.run``.  Any change to probe
        semantics must be applied to all three; the golden-equivalence suite
        (tests/sim/test_golden_equivalence.py) catches divergence.
        """
        l1 = self._l1_caches[core_id]
        cache_set = l1._sets.get(line_addr % l1._num_sets)
        info = cache_set.get(line_addr) if cache_set is not None else None
        if info is not None:
            l1.hits += 1
            l1._tick = tick = l1._tick + 1
            info.last_use = tick
            return 1
        l1.misses += 1
        l2 = self._l2_caches[core_id]
        cache_set = l2._sets.get(line_addr % l2._num_sets)
        info = cache_set.get(line_addr) if cache_set is not None else None
        if info is not None:
            l2.hits += 1
            l2._tick = tick = l2._tick + 1
            info.last_use = tick
            l1.insert(line_addr)
            return 2
        l2.misses += 1
        return 0

    # -- shared latency helpers -------------------------------------------------

    def line_addr(self, byte_addr: int) -> int:
        return self.config.line_address(byte_addr)

    def home_l4_chip(self, line_addr: int) -> int:
        return line_addr % self._n_l4_chips

    def reduction_unit_for_l3(self, chip: int, line_addr: int) -> ReductionUnit:
        return self.l3_reduction_units[(chip, self.config.l3_home_bank(line_addr))]

    def reduction_unit_for_l4(self, line_addr: int) -> ReductionUnit:
        chip = self.home_l4_chip(line_addr)
        bank = line_addr % self.config.l4.banks
        return self.l4_reduction_units[(chip, bank)]
