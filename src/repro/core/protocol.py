"""Abstract coherence protocol interface used by the timing simulator.

A protocol engine owns all coherence state for one simulation run: per-core
private line states, directory entries, reduction units, and the functional
memory image used to check results.  The simulator hands it one access at a
time (in global-time order) and receives an :class:`AccessOutcome` describing
the critical-path latency (broken down by level), the traffic generated, and
the coherence actions taken.

Protocol engines resolve each access atomically against *stable* states; the
transient-state machinery needed for correctness on an unordered network is
modelled and verified separately in :mod:`repro.verification`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.commutative import CommutativeOp
from repro.core.directory import Directory
from repro.core.reduction import ReductionUnit
from repro.hierarchy.system import CacheHierarchy
from repro.interconnect.network import InterconnectModel
from repro.sim.access import MemoryAccess
from repro.sim.config import SystemConfig
from repro.sim.stats import LatencyBreakdown


@dataclass
class AccessOutcome:
    """Result of resolving one memory access against the protocol."""

    latency: LatencyBreakdown = field(default_factory=LatencyBreakdown)
    #: Value returned to the core (loads and atomics only; None otherwise).
    value: object = None
    #: Whether the access hit in the private hierarchy without protocol action.
    private_hit: bool = False
    #: Number of sharers invalidated or downgraded on the critical path.
    invalidations: int = 0
    #: Whether a full reduction was performed to satisfy this access.
    full_reduction: bool = False

    @property
    def total_latency(self) -> float:
        return self.latency.total


class CoherenceProtocol(abc.ABC):
    """Base class for the stable-state protocol engines (MESI, MEUSI, RMO)."""

    #: Human-readable protocol name used in results and experiment tables.
    name: str = "abstract"

    def __init__(self, config: SystemConfig, track_values: bool = True) -> None:
        self.config = config
        self.track_values = track_values
        self.hierarchy = CacheHierarchy(config)
        self.directory = Directory()
        self.interconnect: InterconnectModel = self.hierarchy.interconnect
        #: One reduction unit per L3 bank per chip plus one per L4 bank.
        self.l3_reduction_units = {
            (chip, bank): ReductionUnit(config.reduction_unit, name=f"rdu.l3.{chip}.{bank}")
            for chip in range(config.n_chips)
            for bank in range(config.l3.banks)
        }
        self.l4_reduction_units = {
            (chip, bank): ReductionUnit(config.reduction_unit, name=f"rdu.l4.{chip}.{bank}")
            for chip in range(config.n_l4_chips)
            for bank in range(config.l4.banks)
        }
        #: Functional memory image: word address -> value.
        self.memory_image: Dict[int, object] = {}
        #: Simulator time of the access currently being resolved; protocol
        #: engines set this at the top of :meth:`access` so internal helpers
        #: (evictions, reductions) can schedule shared resources correctly.
        self.current_time: float = 0.0
        # Aggregate statistics (also mirrored in SimulationResult).
        self.stat_invalidations = 0
        self.stat_downgrades = 0
        self.stat_full_reductions = 0
        self.stat_partial_reductions = 0

    # -- functional memory image ----------------------------------------------

    def read_word(self, address: int):
        """Current architectural value of a word (after any pending reduction).

        Note: callers must have triggered the protocol-level reduction first;
        this only consults the committed memory image.
        """
        return self.memory_image.get(address, 0)

    def _write_word(self, address: int, value) -> None:
        if self.track_values and value is not None:
            self.memory_image[address] = value

    def _apply_update(self, address: int, op: CommutativeOp, value) -> None:
        if not self.track_values or value is None:
            return
        current = self.memory_image.get(address, op.identity if address not in self.memory_image else 0)
        if address not in self.memory_image:
            current = 0 if op.identity == 0 or isinstance(op.identity, float) else op.identity
        self.memory_image[address] = op.apply(current, value)

    # -- protocol interface ----------------------------------------------------

    @abc.abstractmethod
    def access(self, core_id: int, access: MemoryAccess, now: float) -> AccessOutcome:
        """Resolve one access issued by ``core_id`` at simulator time ``now``."""

    def finalize(self) -> None:
        """Flush protocol state at the end of a run.

        MEUSI overrides this to reduce any outstanding update-only lines so
        that the functional memory image reflects all buffered deltas.
        """

    # -- shared latency helpers -------------------------------------------------

    def line_addr(self, byte_addr: int) -> int:
        return self.config.line_address(byte_addr)

    def home_l4_chip(self, line_addr: int) -> int:
        return self.config.l4_home_chip(line_addr)

    def reduction_unit_for_l3(self, chip: int, line_addr: int) -> ReductionUnit:
        return self.l3_reduction_units[(chip, self.config.l3_home_bank(line_addr))]

    def reduction_unit_for_l4(self, line_addr: int) -> ReductionUnit:
        chip = self.home_l4_chip(line_addr)
        bank = line_addr % self.config.l4.banks
        return self.l4_reduction_units[(chip, bank)]
