"""Coherence states and request types for the MESI / MEUSI protocol family.

The timing simulator operates on *stable* states (Sec. 3.1/3.2 of the paper);
the transient-state machinery needed for race-freedom on an unordered network
lives in :mod:`repro.verification`, which models the full Fig. 7 state
machines.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.core.commutative import CommutativeOp


class StableState(enum.Enum):
    """Stable states of a line in a private cache.

    ``MODIFIED``/``EXCLUSIVE``/``SHARED``/``INVALID`` are the conventional
    MESI states.  ``UPDATE`` is COUP's update-only state (U): the cache may
    buffer commutative updates of the line's current operation type, but may
    not satisfy reads.
    """

    INVALID = "I"
    SHARED = "S"
    EXCLUSIVE = "E"
    MODIFIED = "M"
    UPDATE = "U"

    @property
    def can_read(self) -> bool:
        """Whether a core may satisfy a load from a line in this state."""
        return self in (StableState.SHARED, StableState.EXCLUSIVE, StableState.MODIFIED)

    @property
    def can_write(self) -> bool:
        """Whether a core may satisfy an ordinary store from this state."""
        return self in (StableState.EXCLUSIVE, StableState.MODIFIED)

    def can_update(self, op: Optional[CommutativeOp], line_op: Optional[CommutativeOp]) -> bool:
        """Whether a commutative update of type ``op`` can proceed locally.

        ``M`` (and ``E``, which silently upgrades to ``M``) can satisfy any
        update because the cache holds the actual value.  ``U`` can satisfy
        updates only of the same type currently buffered on the line.
        """
        if self in (StableState.EXCLUSIVE, StableState.MODIFIED):
            return True
        if self is StableState.UPDATE:
            return op is not None and op is line_op
        return False


class RequestType(enum.Enum):
    """Request classes a core can issue to the memory system (Fig. 4)."""

    READ = "R"
    WRITE = "W"
    COMMUTATIVE = "C"


class LineMode(enum.Enum):
    """Directory-visible mode of a line (Sec. 3.3).

    A line is either uncached, held exclusively by one private cache,
    held read-only by one or more caches, or held update-only by one or
    more caches (COUP's addition).
    """

    UNCACHED = "uncached"
    EXCLUSIVE = "exclusive"
    READ_ONLY = "read_only"
    UPDATE_ONLY = "update_only"


class NonExclusiveType:
    """Operation type tag of the generalized non-exclusive (N) state.

    Sec. 3.4 integrates S and U into a single non-exclusive state whose
    per-line type field is either "read-only" or one of the commutative
    update types.  This helper represents that field: ``op`` is ``None`` for
    read-only, or a :class:`CommutativeOp` for update-only.
    """

    READ_ONLY: "NonExclusiveType"

    def __init__(self, op: Optional[CommutativeOp]) -> None:
        self.op = op

    def __eq__(self, other: object) -> bool:
        return isinstance(other, NonExclusiveType) and self.op is other.op

    def __hash__(self) -> int:
        return hash(self.op)

    def __repr__(self) -> str:
        return f"NonExclusiveType({'read-only' if self.op is None else self.op.value})"

    @property
    def is_read_only(self) -> bool:
        return self.op is None

    @property
    def is_update(self) -> bool:
        return self.op is not None

    def compatible_with_read(self) -> bool:
        """A read request is compatible only with the read-only type."""
        return self.is_read_only

    def compatible_with_update(self, op: CommutativeOp) -> bool:
        """An update request is compatible only with the same update type."""
        return self.op is op


NonExclusiveType.READ_ONLY = NonExclusiveType(None)


def encode_type_field(ne_type: Optional[NonExclusiveType]) -> int:
    """Encode the non-exclusive type field as the paper's 4-bit tag.

    The hardware cost analysis (Sec. 5.1) states four bits per line suffice to
    encode read-only plus the eight commutative update types.  Value 0 encodes
    read-only; values 1-8 encode the update types in declaration order.
    """
    if ne_type is None or ne_type.is_read_only:
        return 0
    ops = list(CommutativeOp)
    return 1 + ops.index(ne_type.op)


def decode_type_field(field: int) -> NonExclusiveType:
    """Inverse of :func:`encode_type_field`."""
    if field == 0:
        return NonExclusiveType.READ_ONLY
    ops = list(CommutativeOp)
    if not 1 <= field <= len(ops):
        raise ValueError(f"invalid non-exclusive type field: {field}")
    return NonExclusiveType(ops[field - 1])
