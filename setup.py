"""Setup shim for environments without the ``wheel`` package.

The offline evaluation environment lacks ``wheel``, so PEP 517 editable
installs fail; this shim lets ``pip install -e . --no-use-pep517
--no-build-isolation`` (and plain ``pip install -e .`` on older pips) fall
back to the legacy ``setup.py develop`` path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
