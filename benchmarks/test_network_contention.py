"""Benchmark: interconnect subsystem overhead and contention-model cost.

The topology/contention subsystem replaced the fixed off-chip latency
constant with per-(src, dst) table lookups on the protocol slow path, plus an
optional epoch queueing model.  This benchmark guards the bargain:

* **disabled overhead** — a dancehall/no-contention run vs. the legacy
  constant path (reconstructed by rebinding the per-pair hooks to the old
  fixed round-trip constant).  Results must be bit-identical and the
  wall-clock overhead must stay under 5%.
* **enabled cost** — the same run with the epoch contention model charging
  surcharges, recorded (not gated) so the trajectory shows what turning the
  model on costs.

Timings use the **minimum** over repeats: both paths execute the same
simulation, so min-of-N is the noise-robust estimator of their true cost
(medians of near-identical runs swing more on shared CI machines).  The
trajectory lands in ``benchmarks/BENCH_network.json``.
"""

from __future__ import annotations

import os
from datetime import datetime, timezone

from conftest import BENCH_REPEATS, append_trajectory, interleaved_best_times, run_once

from repro.experiments import settings
from repro.experiments.paper_workloads import make_hist
from repro.sim.config import TopologyConfig, table1_config
from repro.sim.simulator import MulticoreSimulator, make_protocol
from repro.workloads import UpdateStyle

TRAJECTORY_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_network.json")

#: Wall-clock repeats per mode; the minimum is recorded.
REPEATS = max(BENCH_REPEATS, 5)

#: Gate on the disabled-path overhead vs. the legacy constant path.
MAX_DISABLED_OVERHEAD_PCT = 5.0


def _simulate(trace, config, *, legacy: bool = False):
    """One MESI run; ``legacy`` rebinds every per-pair hook to the old constant."""
    engine = make_protocol("MESI", config, track_values=False)
    if legacy:
        round_trip = engine._offchip_round_trip
        constant_l4 = lambda chip, l4, line_addr, now, _rt=round_trip: _rt  # noqa: E731
        engine._l4_rt = constant_l4
        engine._l4_control_rt = constant_l4
        engine._l4_partial = constant_l4
        engine._chip_rt = lambda src, dst, now, _rt=round_trip: _rt
    return MulticoreSimulator(config, engine, track_values=False).run(trace)


def test_network_contention_overhead(benchmark):
    n_cores = min(16, settings.max_cores())
    config = table1_config(n_cores)
    contended = table1_config(
        n_cores, topology=TopologyConfig(name="dancehall", contention=True)
    )
    trace = make_hist(UpdateStyle.COMMUTATIVE).generate(n_cores)

    timings = interleaved_best_times(
        [
            ("legacy", lambda: _simulate(trace, config, legacy=True)),
            ("disabled", lambda: _simulate(trace, config)),
            ("enabled", lambda: _simulate(trace, contended)),
        ],
        repeats=REPEATS,
    )
    legacy_s, legacy_times, legacy_result = timings["legacy"]
    disabled_s, disabled_times, disabled_result = timings["disabled"]
    enabled_s, enabled_times, enabled_result = timings["enabled"]
    run_once(benchmark, _simulate, trace, config)

    # The disabled subsystem must be invisible in the results.
    assert disabled_result == legacy_result

    overhead_disabled_pct = (disabled_s / legacy_s - 1.0) * 100.0
    overhead_enabled_pct = (enabled_s / legacy_s - 1.0) * 100.0

    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "scale": settings.scale(),
        "max_cores": settings.max_cores(),
        "n_cores": n_cores,
        "repeats": REPEATS,
        "legacy_s": round(legacy_s, 4),
        "disabled_s": round(disabled_s, 4),
        "enabled_s": round(enabled_s, 4),
        "legacy_times_s": [round(t, 4) for t in legacy_times],
        "disabled_times_s": [round(t, 4) for t in disabled_times],
        "enabled_times_s": [round(t, 4) for t in enabled_times],
        "overhead_disabled_pct": round(overhead_disabled_pct, 2),
        "overhead_enabled_pct": round(overhead_enabled_pct, 2),
        "contention_surcharge_cycles": (
            enabled_result.link_stats.surcharge_cycles
            if enabled_result.link_stats
            else 0.0
        ),
        "max_link_utilization": (
            enabled_result.link_stats.max_link_utilization
            if enabled_result.link_stats
            else 0.0
        ),
    }
    append_trajectory(TRAJECTORY_PATH, entry)

    assert overhead_disabled_pct < MAX_DISABLED_OVERHEAD_PCT, (
        f"disabled contention model costs {overhead_disabled_pct:.2f}% "
        f"(limit {MAX_DISABLED_OVERHEAD_PCT}%): {entry}"
    )
