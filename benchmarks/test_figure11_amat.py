"""Benchmarks regenerating Figure 11: AMAT breakdown of COUP vs. MESI."""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.experiments import figure11_amat, settings


@pytest.mark.parametrize("name", ["hist", "spmv", "pgrank", "bfs", "fluidanimate"])
def test_figure11_amat_breakdown(benchmark, name):
    """AMAT components per protocol and core count for one benchmark."""
    core_points = [c for c in (8, 32) if c <= settings.max_cores()] or [settings.max_cores()]
    rows = run_once(benchmark, figure11_amat.run_benchmark, name, core_points)
    benchmark.extra_info["rows"] = rows

    largest = max(core_points)
    coup = [r for r in rows if r["protocol"] == "COUP" and r["n_cores"] == largest][0]
    mesi = [r for r in rows if r["protocol"] == "MESI" and r["n_cores"] == largest][0]

    # Paper shape: COUP's AMAT advantage comes from the invalidation component.
    # bfs interleaves reads and bitmap updates finely, so part of its MESI
    # invalidation time reappears as reduction time under COUP; everywhere the
    # invalidation component must not grow, and for the update-heavy
    # benchmarks it must clearly shrink.
    assert coup["amat"] <= mesi["amat"] * 1.05
    assert coup["l4_invalidations"] <= mesi["l4_invalidations"] * 1.10
    if name in ("hist", "pgrank"):
        assert coup["l4_invalidations"] < mesi["l4_invalidations"]
    # The breakdown must account for (almost) the whole AMAT.
    for row in (coup, mesi):
        component_sum = sum(
            row[key]
            for key in ("l2", "l3", "offchip_network", "l4_invalidations", "l4", "main_memory")
        )
        assert component_sum <= row["amat"]
