"""Benchmarks regenerating Table 1, Table 2, the Sec. 5.2 traffic results, and
the Sec. 5.5 reduction-unit sensitivity study."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import (
    sensitivity_reduction_unit,
    settings,
    table1_configuration,
    table2_benchmarks,
    traffic_reduction,
)


def test_table1_configuration(benchmark):
    """The simulated machine's parameters (Table 1)."""
    rows = run_once(benchmark, table1_configuration.run, n_cores=128)
    benchmark.extra_info["rows"] = rows
    assert any("MESI/MEUSI" in str(row["value"]) for row in rows)


def test_table2_benchmark_characteristics(benchmark):
    """Per-benchmark trace characteristics and sequential run time (Table 2)."""
    rows = run_once(benchmark, table2_benchmarks.run)
    benchmark.extra_info["rows"] = rows
    assert {row["benchmark"] for row in rows} == {
        "hist",
        "spmv",
        "pgrank",
        "bfs",
        "fluidanimate",
    }
    # Commutative updates are a small fraction of all instructions (Sec. 5.2).
    assert all(row["comm_op_fraction"] < 0.35 for row in rows)


def test_traffic_reduction(benchmark):
    """Off-chip traffic of COUP relative to MESI (Sec. 5.2)."""
    rows = run_once(benchmark, traffic_reduction.run, n_cores=settings.max_cores())
    benchmark.extra_info["rows"] = rows
    reductions = {row["benchmark"]: row["traffic_reduction"] for row in rows}
    # Paper shape: hist and pgrank see the largest traffic reductions; no
    # benchmark sees a meaningful traffic increase.
    assert reductions["hist"] > 2.0
    assert reductions["pgrank"] > 1.2
    assert all(value > 0.9 for value in reductions.values())


def test_sensitivity_to_reduction_unit(benchmark):
    """Slow (64-bit unpipelined) vs. fast (256-bit pipelined) reduction ALU (Sec. 5.5)."""
    rows = run_once(benchmark, sensitivity_reduction_unit.run, n_cores=settings.max_cores())
    benchmark.extra_info["rows"] = rows
    degradations = {row["benchmark"]: row["degradation_pct"] for row in rows}
    # Paper shape: sensitivity is small.  (bfs is the most sensitive benchmark
    # here because the scaled-down visited bitmap spans few lines.)
    insensitive = [name for name, value in degradations.items() if value < 5.0]
    assert len(insensitive) >= 3
    assert all(value < 60.0 for value in degradations.values())
