"""Benchmark-suite configuration.

The benchmark harness regenerates every table and figure of the paper's
evaluation at a reduced scale (controlled by ``REPRO_SCALE`` and
``REPRO_MAX_CORES``; see :mod:`repro.experiments.settings`).  Each benchmark
runs its experiment exactly once per pytest-benchmark round and attaches the
resulting rows to ``benchmark.extra_info`` so the regenerated numbers appear
in the benchmark report alongside the timing.
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.experiments import settings  # noqa: E402

#: Scale used by the benchmark suite unless the user overrides it via the
#: environment.  Chosen so the full suite completes in a few minutes of
#: pure-Python simulation while preserving every qualitative result.
BENCH_SCALE = float(os.environ.get("REPRO_SCALE", 0.35))
BENCH_MAX_CORES = int(os.environ.get("REPRO_MAX_CORES", 32))


@pytest.fixture(autouse=True)
def bench_scale():
    """Apply the benchmark-suite scale for every benchmark."""
    previous_scale = settings.scale()
    previous_cores = settings.max_cores()
    settings.set_scale(BENCH_SCALE)
    settings.set_max_cores(BENCH_MAX_CORES)
    yield
    settings.set_scale(previous_scale)
    settings.set_max_cores(previous_cores)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


#: Timed repeats per benchmark measurement; medians land in trajectories.
BENCH_REPEATS = 3
#: Bound on every trajectory file; old entries age out.
MAX_TRAJECTORY_ENTRIES = 200


def median_time(fn, repeats: int = BENCH_REPEATS):
    """``(median_seconds, all_seconds, last_result)`` over timed repeats.

    Single-shot wall-clock numbers on shared machines swing by tens of
    percent; every benchmark records the median of ``repeats`` runs.
    """
    import statistics
    import time

    times = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times), times, result


def append_trajectory(path: str, entry: dict, max_entries: int = MAX_TRAJECTORY_ENTRIES) -> None:
    """Append one entry to a bounded JSON trajectory file."""
    import json

    trajectory = []
    if os.path.exists(path):
        try:
            with open(path) as handle:
                trajectory = json.load(handle)
        except (OSError, ValueError):
            trajectory = []  # a corrupt trajectory restarts rather than aborts
    if not isinstance(trajectory, list):
        trajectory = []
    trajectory.append(entry)
    trajectory = trajectory[-max_entries:]
    with open(path, "w") as handle:
        json.dump(trajectory, handle, indent=2)
        handle.write("\n")
