"""Benchmark-suite configuration.

The benchmark harness regenerates every table and figure of the paper's
evaluation at a reduced scale (controlled by ``REPRO_SCALE`` and
``REPRO_MAX_CORES``; see :mod:`repro.experiments.settings`).  Each benchmark
runs its experiment exactly once per pytest-benchmark round and attaches the
resulting rows to ``benchmark.extra_info`` so the regenerated numbers appear
in the benchmark report alongside the timing.
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.experiments import settings  # noqa: E402

#: Scale used by the benchmark suite unless the user overrides it via the
#: environment.  Chosen so the full suite completes in a few minutes of
#: pure-Python simulation while preserving every qualitative result.
BENCH_SCALE = float(os.environ.get("REPRO_SCALE", 0.35))
BENCH_MAX_CORES = int(os.environ.get("REPRO_MAX_CORES", 32))


@pytest.fixture(autouse=True)
def bench_scale():
    """Apply the benchmark-suite scale for every benchmark."""
    previous_scale = settings.scale()
    previous_cores = settings.max_cores()
    settings.set_scale(BENCH_SCALE)
    settings.set_max_cores(BENCH_MAX_CORES)
    yield
    settings.set_scale(previous_scale)
    settings.set_max_cores(previous_cores)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
