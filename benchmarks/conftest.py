"""Benchmark-suite configuration.

The benchmark harness regenerates every table and figure of the paper's
evaluation at a reduced scale (controlled by ``REPRO_SCALE`` and
``REPRO_MAX_CORES``; see :mod:`repro.experiments.settings`).  Each benchmark
runs its experiment exactly once per pytest-benchmark round and attaches the
resulting rows to ``benchmark.extra_info`` so the regenerated numbers appear
in the benchmark report alongside the timing.
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.experiments import settings, sweep  # noqa: E402


@pytest.fixture(autouse=True, scope="session")
def shm_hygiene():
    """Reclaim stale shared-memory segments and assert this session leaks none.

    Benchmarks that exercise the campaign fabric publish traces as
    ``repro_shm_<pid>_*`` segments; a killed run can strand them in
    ``/dev/shm``.  Dead owners' segments are swept before the session, and
    any segment still owned by *this* process at teardown is a leak.
    """
    if not os.path.isdir("/dev/shm"):
        yield
        return
    reclaimed = sweep.reclaim_stale_segments()
    if reclaimed:
        print(f"reclaimed stale shm segments: {', '.join(reclaimed)}", file=sys.stderr)
    yield
    prefix = f"{sweep.SHM_NAME_PREFIX}{os.getpid()}_"
    leaked = [name for name in os.listdir("/dev/shm") if name.startswith(prefix)]
    assert not leaked, f"benchmark session leaked shm segments: {leaked}"

#: Scale used by the benchmark suite unless the user overrides it via the
#: environment.  Chosen so the full suite completes in a few minutes of
#: pure-Python simulation while preserving every qualitative result.
BENCH_SCALE = float(os.environ.get("REPRO_SCALE", 0.35))
BENCH_MAX_CORES = int(os.environ.get("REPRO_MAX_CORES", 32))


@pytest.fixture(autouse=True)
def bench_scale():
    """Apply the benchmark-suite scale for every benchmark."""
    previous_scale = settings.scale()
    previous_cores = settings.max_cores()
    settings.set_scale(BENCH_SCALE)
    settings.set_max_cores(BENCH_MAX_CORES)
    yield
    settings.set_scale(previous_scale)
    settings.set_max_cores(previous_cores)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


#: Timed repeats per benchmark measurement; medians land in trajectories.
BENCH_REPEATS = 3
#: Bound on every trajectory file; old entries age out.
MAX_TRAJECTORY_ENTRIES = 200


def timed_modes(modes, repeats: int = BENCH_REPEATS, *, estimator=None, warmup=True):
    """Shared timing core: ``{name: (estimate_s, times, last_result)}``.

    ``modes`` is a sequence of ``(name, zero-arg callable)`` pairs.  Rounds
    are *interleaved* (one timing of every mode per round, optionally after
    one untimed warm-up round) so slow drift of the machine's speed — CPU
    frequency scaling, a sibling job winding down — hits all modes equally
    instead of biasing whichever phase ran later.  ``estimator`` folds each
    mode's timings into the reported estimate: ``min`` for comparing
    near-identical code paths (noise-robust), median (the default) for
    absolute wall-clock trajectories.

    This is the one timing helper behind every benchmark in this suite
    (test_sweep.py, test_columnar.py, test_network_contention.py,
    test_kernel.py); keep refinements here rather than per-file.
    """
    import statistics
    import time

    if estimator is None:
        estimator = statistics.median
    times = {name: [] for name, _ in modes}
    results = {}
    if warmup:  # imports, allocator, branch caches
        for name, fn in modes:
            results[name] = fn()
    for _ in range(repeats):
        for name, fn in modes:
            start = time.perf_counter()
            results[name] = fn()
            times[name].append(time.perf_counter() - start)
    return {name: (estimator(times[name]), times[name], results[name]) for name, _ in modes}


def median_time(fn, repeats: int = BENCH_REPEATS):
    """``(median_seconds, all_seconds, last_result)`` over timed repeats.

    Single-shot wall-clock numbers on shared machines swing by tens of
    percent; every benchmark records the median of ``repeats`` runs.
    (Single-mode wrapper around :func:`timed_modes`; no warm-up round, so
    existing trajectory semantics are unchanged.)
    """
    estimate, times, result = timed_modes(
        (("fn", fn),), repeats, warmup=False
    )["fn"]
    return estimate, times, result


def interleaved_best_times(modes, repeats: int = BENCH_REPEATS):
    """``{name: (min_seconds, all_seconds, last_result)}`` per mode.

    Min-of-N over interleaved rounds with one warm-up round: the right
    estimator when the modes execute near-identical work and the question
    is which code path is cheaper.
    """
    return timed_modes(modes, repeats, estimator=min, warmup=True)


def append_trajectory(path: str, entry: dict, max_entries: int = MAX_TRAJECTORY_ENTRIES) -> None:
    """Append one entry to a bounded JSON trajectory file."""
    import json

    trajectory = []
    if os.path.exists(path):
        try:
            with open(path) as handle:
                trajectory = json.load(handle)
        except (OSError, ValueError):
            trajectory = []  # a corrupt trajectory restarts rather than aborts
    if not isinstance(trajectory, list):
        trajectory = []
    trajectory.append(entry)
    trajectory = trajectory[-max_entries:]
    with open(path, "w") as handle:
        json.dump(trajectory, handle, indent=2)
        handle.write("\n")
