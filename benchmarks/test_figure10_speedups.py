"""Benchmarks regenerating Figure 10: per-application speedups of COUP vs. MESI."""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.experiments import figure10_speedups, settings

#: Paper result at 128 cores, used to check the *direction and rough size* of
#: the advantage (our simulator and inputs differ, so only the shape is held).
PAPER_ADVANTAGE = {
    "hist": 2.4,
    "spmv": 1.34,
    "pgrank": 2.4,
    "bfs": 1.20,
    "fluidanimate": 1.04,
}


@pytest.mark.parametrize("name", ["hist", "spmv", "pgrank", "bfs", "fluidanimate"])
def test_figure10_speedups(benchmark, name):
    """Speedup curves for one benchmark (1..max_cores, MESI and COUP)."""
    core_counts = [c for c in (1, 8, 32, 64) if c <= settings.max_cores()]
    rows = run_once(benchmark, figure10_speedups.run_benchmark, name, core_counts)
    benchmark.extra_info["rows"] = rows

    largest = rows[-1]
    # COUP must not lose to MESI at the largest core count, and the benchmarks
    # the paper calls out as big winners must show a clear advantage.
    assert largest["coup_over_mesi"] >= 0.97
    if PAPER_ADVANTAGE[name] >= 1.3:
        assert largest["coup_over_mesi"] > 1.2
    # Both protocols must scale: the largest run beats the single-core run.
    assert largest["coup_speedup"] > 1.0
