"""Benchmark regenerating Figure 8: exhaustive verification cost."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure08_verification


def test_figure08_verification_cost(benchmark):
    """State-space size and time for MESI and MEUSI across cores and op counts."""
    rows = run_once(
        benchmark,
        figure08_verification.run,
        protocols=("MESI", "MEUSI"),
        core_counts=(1, 2),
        op_counts=(1, 2, 4),
        max_states=150_000,
    )
    benchmark.extra_info["rows"] = rows

    # Every explored configuration verifies (no invariant violations/deadlock).
    assert all(row["verified"] for row in rows if row["completed"])

    # Paper shape: cost grows much faster with cores than with the number of
    # commutative-update types.
    meusi = [r for r in rows if r["protocol"] == "MEUSI"]
    states = {(r["n_cores"], r["n_ops"]): r["states"] for r in meusi}
    core_growth = states[(2, 1)] / states[(1, 1)]
    ops_growth = states[(2, 4)] / states[(2, 1)]
    assert core_growth > ops_growth

    # MEUSI costs more to verify than MESI at the same configuration.
    mesi_2 = [r for r in rows if r["protocol"] == "MESI" and r["n_cores"] == 2][0]
    meusi_2 = states[(2, 1)]
    assert meusi_2 > mesi_2["states"]
