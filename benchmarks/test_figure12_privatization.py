"""Benchmark regenerating Figure 12: histogram reduction variable vs. privatization."""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.experiments import figure12_privatization, settings


@pytest.mark.parametrize("n_bins", [512, 16384])
def test_figure12_privatization(benchmark, n_bins):
    """COUP vs. core- and socket-level privatization at one bin count."""
    core_counts = [c for c in (1, 8, 32, 64) if c <= settings.max_cores()]
    rows = run_once(benchmark, figure12_privatization.run_bin_count, n_bins, core_counts)
    benchmark.extra_info["rows"] = rows

    largest = rows[-1]
    # Paper shape: COUP at least matches core-level privatization with few
    # bins, and clearly beats it with many bins (where the reduction phase and
    # footprint dominate); socket-level privatization never wins.
    if n_bins >= 16384:
        assert largest["coup_speedup"] > largest["core_privatization_speedup"]
    else:
        assert largest["coup_speedup"] >= 0.9 * largest["core_privatization_speedup"]
    assert largest["coup_speedup"] >= largest["socket_privatization_speedup"] * 0.95
