"""Benchmark regenerating Figure 2: histogram performance vs. number of bins."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure02_histogram_bins, settings


def test_figure02_histogram_bins(benchmark):
    """COUP vs. MESI-atomics vs. MESI-privatization across the bin sweep."""
    rows = run_once(
        benchmark,
        figure02_histogram_bins.run,
        bin_counts=(32, 256, 2048, 16384),
        n_cores=min(64, settings.max_cores()),
    )
    benchmark.extra_info["rows"] = rows

    # Paper shape: COUP is the fastest scheme at every bin count, and software
    # privatization degrades relative to atomics as the bin count grows.
    for row in rows:
        assert row["coup_cycles"] <= row["atomics_cycles"]
        assert row["coup_cycles"] <= row["privatization_cycles"]
    first, last = rows[0], rows[-1]
    priv_vs_atomics_first = first["privatization_cycles"] / first["atomics_cycles"]
    priv_vs_atomics_last = last["privatization_cycles"] / last["atomics_cycles"]
    assert priv_vs_atomics_last > priv_vs_atomics_first
