"""Benchmark: telemetry overhead across REPRO_OBS modes.

The obs subsystem instruments the batched kernel's slow paths (stint
transitions, merge-gate verdicts, boundary phases) and promises to be
invisible when disabled.  This benchmark guards that promise on a small
paper grid (histogram workload, MESI + COUP):

* **disabled overhead** — ``counters`` mode vs. ``off``.  ``off`` costs one
  attribute load and an ``is None`` test per instrumented slow-path site;
  ``counters`` does strictly more (every one of those sites also bumps a
  dict entry), so the counters-vs-off gap is an upper bound on what the
  guards themselves cost.  Gated at 1%.
* **full cost** — counters plus phase timing and JSONL event segments,
  recorded (not gated) so the trajectory shows what full telemetry costs.

All three modes must produce **byte-identical** serialized results —
telemetry may observe the kernel, never steer it.

Timings use the minimum over interleaved repeats (the noise-robust
estimator for near-identical code paths).  A 1% gate is meaningless when a
mode finishes in a few hundred milliseconds, so grids below a wall-clock
floor record the overhead without asserting on it.  The trajectory lands
in ``benchmarks/BENCH_obs.json``.
"""

from __future__ import annotations

import json
import os
from datetime import datetime, timezone

from conftest import BENCH_REPEATS, append_trajectory, interleaved_best_times, run_once

import repro.obs as obs
from repro.obs import events as obs_events
from repro.experiments import settings
from repro.experiments.paper_workloads import make_hist
from repro.sim.config import table1_config
from repro.sim.simulator import simulate
from repro.workloads import UpdateStyle

TRAJECTORY_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_obs.json")

#: Wall-clock repeats per mode; the minimum is recorded.
REPEATS = max(BENCH_REPEATS, 7)

#: Gate on the counters-vs-off gap (upper bound on the disabled overhead).
MAX_DISABLED_OVERHEAD_PCT = 1.0

#: Below this per-mode wall-clock the 1% gate drowns in timer noise; the
#: overhead is still recorded in the trajectory, just not asserted on.
MIN_GATED_SECONDS = 0.4

PROTOCOLS = ("MESI", "COUP")

#: Grid passes folded into one timing sample.  A single pass finishes in
#: ~150ms at benchmark scale — too short for a 1% comparison — so each
#: sample runs the grid several times to push per-sample wall clock past
#: ``MIN_GATED_SECONDS`` and let machine jitter average out.
PASSES_PER_SAMPLE = 4


def _run_grid(traces, configs):
    """Grid passes for one timing sample; returns canonical serialized results."""
    serialized = []
    for _ in range(PASSES_PER_SAMPLE):
        serialized = [
            json.dumps(
                simulate(
                    traces[protocol], configs[protocol], protocol, track_values=False
                ).to_jsonable(),
                sort_keys=True,
            )
            for protocol in PROTOCOLS
        ]
    return serialized


def test_obs_mode_overhead(benchmark, tmp_path):
    n_cores = min(16, settings.max_cores())
    configs = {protocol: table1_config(n_cores) for protocol in PROTOCOLS}
    workload = make_hist(UpdateStyle.COMMUTATIVE)
    traces = {protocol: workload.generate_columnar(n_cores) for protocol in PROTOCOLS}

    obs_dir = str(tmp_path / "obs")

    def _off():
        obs.reconfigure("off")
        return _run_grid(traces, configs)

    def _counters():
        obs.reconfigure("counters")
        return _run_grid(traces, configs)

    def _full():
        obs.reconfigure("full", obs_dir)
        try:
            return _run_grid(traces, configs)
        finally:
            obs_events.reset_process_writer()

    try:
        timings = interleaved_best_times(
            [("off", _off), ("counters", _counters), ("full", _full)],
            repeats=REPEATS,
        )
        run_once(benchmark, _off)
    finally:
        obs_events.reset_process_writer()
        obs.reconfigure()  # back to env-driven configuration

    off_s, off_times, off_results = timings["off"]
    counters_s, counters_times, counters_results = timings["counters"]
    full_s, full_times, full_results = timings["full"]

    # The telemetry contract: identical bytes in every mode.
    assert counters_results == off_results
    assert full_results == off_results

    overhead_counters_pct = (counters_s / off_s - 1.0) * 100.0
    overhead_full_pct = (full_s / off_s - 1.0) * 100.0

    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "scale": settings.scale(),
        "max_cores": settings.max_cores(),
        "n_cores": n_cores,
        "repeats": REPEATS,
        "off_s": round(off_s, 4),
        "counters_s": round(counters_s, 4),
        "full_s": round(full_s, 4),
        "off_times_s": [round(t, 4) for t in off_times],
        "counters_times_s": [round(t, 4) for t in counters_times],
        "full_times_s": [round(t, 4) for t in full_times],
        "overhead_counters_pct": round(overhead_counters_pct, 2),
        "overhead_full_pct": round(overhead_full_pct, 2),
        "gated": off_s >= MIN_GATED_SECONDS,
    }
    append_trajectory(TRAJECTORY_PATH, entry)

    if off_s >= MIN_GATED_SECONDS:
        assert overhead_counters_pct < MAX_DISABLED_OVERHEAD_PCT, (
            f"telemetry guards cost {overhead_counters_pct:.2f}% "
            f"(limit {MAX_DISABLED_OVERHEAD_PCT}%): {entry}"
        )
