"""Benchmark: multi-protocol sweep wall-clock with trace reuse on and off.

The sweep engine materializes each workload trace once and shares it across
protocols; this benchmark times an (MESI, COUP, RMO) sweep over the ``hist``
benchmark both ways and records the wall-clock trajectory into
``benchmarks/BENCH_sweep.json`` so the trace-reuse win is tracked across
revisions.  Results are asserted bit-identical between the two modes — the
speedup must never come at the cost of fidelity.
"""

from __future__ import annotations

import json
import os
import time
from datetime import datetime, timezone

from conftest import run_once

from repro.experiments import settings
from repro.experiments.paper_workloads import make_hist
from repro.sim.config import table1_config
from repro.sim.simulator import compare_protocols
from repro.workloads import UpdateStyle

#: Trajectory file recording one entry per benchmark run.
TRAJECTORY_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_sweep.json")
#: Keep the trajectory bounded; old entries age out.
MAX_TRAJECTORY_ENTRIES = 200

PROTOCOLS = ("MESI", "COUP", "RMO")


def _sweep(share_trace: bool):
    """One multi-protocol sweep over the hist benchmark."""
    n_cores = min(16, settings.max_cores())

    def factory(n):
        return make_hist(UpdateStyle.COMMUTATIVE).generate(n)

    return compare_protocols(
        factory, table1_config(n_cores), protocols=PROTOCOLS, share_trace=share_trace
    )


def _append_trajectory(entry: dict) -> None:
    trajectory = []
    if os.path.exists(TRAJECTORY_PATH):
        try:
            with open(TRAJECTORY_PATH) as handle:
                trajectory = json.load(handle)
        except (OSError, json.JSONDecodeError):
            trajectory = []  # a corrupt trajectory restarts rather than aborts
    if not isinstance(trajectory, list):
        trajectory = []
    trajectory.append(entry)
    trajectory = trajectory[-MAX_TRAJECTORY_ENTRIES:]
    with open(TRAJECTORY_PATH, "w") as handle:
        json.dump(trajectory, handle, indent=2)
        handle.write("\n")


def test_sweep_trace_reuse(benchmark):
    """Time the shared-trace sweep; record both modes' wall-clock."""
    start = time.perf_counter()
    regenerated = _sweep(share_trace=False)
    regenerated_s = time.perf_counter() - start

    start = time.perf_counter()
    shared = run_once(benchmark, _sweep, share_trace=True)
    shared_s = time.perf_counter() - start

    # Sharing must be invisible in the results.
    assert shared == regenerated

    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "scale": settings.scale(),
        "max_cores": settings.max_cores(),
        "protocols": list(PROTOCOLS),
        "shared_trace_s": round(shared_s, 4),
        "regenerated_trace_s": round(regenerated_s, 4),
        "trace_reuse_speedup": round(regenerated_s / shared_s, 3) if shared_s > 0 else None,
    }
    _append_trajectory(entry)
    benchmark.extra_info["trace_reuse"] = entry
