"""Benchmark: multi-protocol sweep wall-clock with trace reuse on and off.

The sweep engine materializes each workload trace once and shares it across
protocols; this benchmark times an (MESI, COUP, RMO) sweep over the ``hist``
benchmark both ways and records the wall-clock trajectory into
``benchmarks/BENCH_sweep.json`` so the trace-reuse win is tracked across
revisions.  Each mode is timed over ``REPEATS`` repeats and the **median**
is recorded — single-shot numbers on shared CI machines swing by tens of
percent, which made the trajectory useless for spotting regressions.
Results are asserted bit-identical between the two modes — the speedup must
never come at the cost of fidelity.
"""

from __future__ import annotations

import os
from datetime import datetime, timezone

from conftest import BENCH_REPEATS as REPEATS
from conftest import append_trajectory, median_time, run_once

from repro.experiments import settings
from repro.experiments.paper_workloads import make_hist
from repro.sim.config import table1_config
from repro.sim.simulator import compare_protocols
from repro.workloads import UpdateStyle

#: Trajectory file recording one entry per benchmark run.
TRAJECTORY_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_sweep.json")

PROTOCOLS = ("MESI", "COUP", "RMO")


def _sweep(share_trace: bool):
    """One multi-protocol sweep over the hist benchmark."""
    n_cores = min(16, settings.max_cores())

    def factory(n):
        return make_hist(UpdateStyle.COMMUTATIVE).generate(n)

    return compare_protocols(
        factory, table1_config(n_cores), protocols=PROTOCOLS, share_trace=share_trace
    )


def test_sweep_trace_reuse(benchmark):
    """Time both sweep modes over repeats; record the medians."""
    regenerated_s, regenerated_times, regenerated = median_time(
        lambda: _sweep(share_trace=False)
    )
    shared_s, shared_times, _ = median_time(lambda: _sweep(share_trace=True))
    shared = run_once(benchmark, _sweep, share_trace=True)

    # Sharing must be invisible in the results.
    assert shared == regenerated

    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "scale": settings.scale(),
        "max_cores": settings.max_cores(),
        "protocols": list(PROTOCOLS),
        "repeats": REPEATS,
        "shared_trace_s": round(shared_s, 4),
        "regenerated_trace_s": round(regenerated_s, 4),
        "shared_trace_all_s": [round(value, 4) for value in shared_times],
        "regenerated_trace_all_s": [round(value, 4) for value in regenerated_times],
        "trace_reuse_speedup": round(regenerated_s / shared_s, 3) if shared_s > 0 else None,
    }
    append_trajectory(TRAJECTORY_PATH, entry)
    benchmark.extra_info["trace_reuse"] = entry
