"""Benchmark: batched simulation kernel vs. the scalar columnar loop.

Two measurements, both pinned bit-identical and recorded in
``benchmarks/BENCH_kernel.json``:

* **Hit-run microbenchmark** — workloads that live in the kernel's regime
  (long private-hit runs: local commutative updates under COUP, read-only
  streams under MESI).  This is where vectorized hit-run scanning pays;
  the suite gates a >=3x geomean wall-clock speedup of the default ``auto``
  kernel over the forced-scalar loop.
* **Paper workload grid** — the five Table 2 benchmarks under MESI (atomic)
  and COUP (commutative).  These are slow-path-dominated, which is exactly
  the regime group retirement targets: the kernel merges independent slow
  accesses fleet-wide in canonical ``(clock, core id)`` order instead of
  paying per-event dispatch.  The gates are (a) a grid-wide geomean
  speedup of ``auto`` over forced-scalar of at least ``MIN_GRID_GEOMEAN``,
  and (b) a per-point regression floor ``MIN_POINT_SPEEDUP``: on
  conflict-dense points where the merge's entry gate declines (cross-op
  stretches, reduction triggers), ``auto`` bails out early and must track
  the scalar loop.  Every point is always asserted bit-identical.

Timings use min-of-N over interleaved rounds (the two modes execute the
same simulation, so min is the noise-robust estimator of true cost).
Single-point wall-clock on shared CI hosts still jitters by several
percent between rounds, which is why the per-point floor is looser than
the geomean gate and skips points below ``MIN_GATED_POINT_SECONDS``: the
geomean averages the jitter away, a per-point assertion cannot.
"""

from __future__ import annotations

import os
import statistics
from datetime import datetime, timezone

from conftest import BENCH_REPEATS, append_trajectory, interleaved_best_times, run_once

from repro.experiments import settings
from repro.experiments.paper_workloads import PAPER_WORKLOAD_FACTORIES
from repro.sim.config import table1_config
from repro.sim.simulator import simulate
from repro.workloads import UpdateStyle
from repro.workloads.synthetic import (
    MultiCounterWorkload,
    ReadOnlyWorkload,
    SharedCounterWorkload,
)

TRAJECTORY_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_kernel.json"
)

REPEATS = max(BENCH_REPEATS, 3)

#: Geomean gate on the hit-run microbenchmark (ISSUE 5 acceptance).
MIN_MICRO_SPEEDUP = 3.0

#: Geomean gate on the paper grid: group retirement must keep ``auto``
#: ahead of the scalar loop across the ten (workload, protocol) points.
#: Measured headroom at scale 1.0 on the reference host is ~1.15-1.25x.
MIN_GRID_GEOMEAN = 1.02

#: Per-point regression floor: no grid point may lose more than this to
#: the scalar loop.  Points where the merge's entry gate declines cost one
#: probed kernel stint (a handful of slow events) plus a few self-limited
#: merge attempts; the rest is host timing jitter.
MIN_POINT_SPEEDUP = 0.85

#: Points whose forced-scalar run is shorter than this are recorded but
#: exempt from the per-point floor: min-of-N cannot average enough work on
#: a ~0.1 s point for an 0.85x assertion to separate regression from
#: jitter.  The geomean gate still includes every point.
MIN_GATED_POINT_SECONDS = 0.2

#: Timing gates need enough simulated work to measure: the bail-out
#: probation is a fixed few milliseconds per run, so on sub-second totals
#: (tiny REPRO_SCALE smoke runs) the percentages are dominated by noise and
#: fixed costs.  Below these floors the gates are recorded but not asserted.
MIN_GATED_GRID_SECONDS = 2.0
MIN_GATED_MICRO_SECONDS = 0.2


def _mode_runner(trace, config, protocol, mode):
    def run():
        previous = os.environ.get("REPRO_SIM_KERNEL")
        os.environ["REPRO_SIM_KERNEL"] = mode
        try:
            return simulate(trace, config, protocol, track_values=False)
        finally:
            if previous is None:
                os.environ.pop("REPRO_SIM_KERNEL", None)
            else:
                os.environ["REPRO_SIM_KERNEL"] = previous

    return run


def _time_point(trace, config, protocol):
    """(scalar_s, auto_s, identical) for one simulation point."""
    timings = interleaved_best_times(
        [
            ("scalar", _mode_runner(trace, config, protocol, "scalar")),
            ("auto", _mode_runner(trace, config, protocol, "auto")),
        ],
        repeats=REPEATS,
    )
    scalar_s, _, scalar_result = timings["scalar"]
    auto_s, _, auto_result = timings["auto"]
    identical = scalar_result.to_jsonable() == auto_result.to_jsonable()
    return scalar_s, auto_s, identical


def _micro_workloads():
    updates = settings.scaled(40_000)
    return (
        (
            "shared-counter",
            "COUP",
            SharedCounterWorkload(
                updates_per_core=updates, update_style=UpdateStyle.COMMUTATIVE
            ),
        ),
        (
            "multi-counter",
            "COUP",
            MultiCounterWorkload(
                n_counters=64, updates_per_core=updates, hot_fraction=0.3
            ),
        ),
        ("read-only", "MESI", ReadOnlyWorkload(reads_per_core=updates)),
    )


def test_kernel_speedup_and_fallback(benchmark):
    n_cores = min(16, settings.max_cores())
    config = table1_config(n_cores)

    micro_rows = []
    representative_trace = None
    for name, protocol, workload in _micro_workloads():
        trace = workload.generate_columnar(n_cores)
        if representative_trace is None:
            representative_trace = trace
        scalar_s, auto_s, identical = _time_point(trace, config, protocol)
        assert identical, f"micro {name}/{protocol}: batched result diverged"
        micro_rows.append(
            {
                "workload": name,
                "protocol": protocol,
                "scalar_s": round(scalar_s, 4),
                "auto_s": round(auto_s, 4),
                "speedup": round(scalar_s / auto_s, 3),
            }
        )
    micro_geomean = statistics.geometric_mean(row["speedup"] for row in micro_rows)

    grid_rows = []
    grid_scalar_total = 0.0
    grid_auto_total = 0.0
    for name, factory in PAPER_WORKLOAD_FACTORIES.items():
        for protocol, style in (
            ("MESI", UpdateStyle.ATOMIC),
            ("COUP", UpdateStyle.COMMUTATIVE),
        ):
            trace = factory(style).generate_columnar(n_cores)
            scalar_s, auto_s, identical = _time_point(trace, config, protocol)
            assert identical, f"grid {name}/{protocol}: batched result diverged"
            grid_scalar_total += scalar_s
            grid_auto_total += auto_s
            grid_rows.append(
                {
                    "workload": name,
                    "protocol": protocol,
                    "scalar_s": round(scalar_s, 4),
                    "auto_s": round(auto_s, 4),
                    "speedup": round(scalar_s / auto_s, 3),
                }
            )
    grid_geomean = statistics.geometric_mean(row["speedup"] for row in grid_rows)
    grid_min_speedup = min(row["speedup"] for row in grid_rows)
    floor_rows = [
        row for row in grid_rows if row["scalar_s"] >= MIN_GATED_POINT_SECONDS
    ]
    grid_min_gated_speedup = (
        min(row["speedup"] for row in floor_rows) if floor_rows else None
    )
    fallback_overhead_pct = (grid_auto_total / grid_scalar_total - 1.0) * 100.0

    # One representative run under pytest-benchmark for the report.
    run_once(benchmark, _mode_runner(representative_trace, config, "COUP", "auto"))

    micro_gated = all(row["scalar_s"] >= MIN_GATED_MICRO_SECONDS for row in micro_rows)
    grid_gated = grid_scalar_total >= MIN_GATED_GRID_SECONDS
    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "scale": settings.scale(),
        "max_cores": settings.max_cores(),
        "n_cores": n_cores,
        "repeats": REPEATS,
        "micro": micro_rows,
        "micro_geomean_speedup": round(micro_geomean, 3),
        "micro_gated": micro_gated,
        "grid": grid_rows,
        "grid_geomean_speedup": round(grid_geomean, 3),
        "grid_min_speedup": round(grid_min_speedup, 3),
        "grid_min_gated_speedup": (
            round(grid_min_gated_speedup, 3)
            if grid_min_gated_speedup is not None
            else None
        ),
        "grid_scalar_total_s": round(grid_scalar_total, 3),
        "grid_fallback_overhead_pct": round(fallback_overhead_pct, 2),
        "grid_gated": grid_gated,
    }
    append_trajectory(TRAJECTORY_PATH, entry)

    if micro_gated:
        assert micro_geomean >= MIN_MICRO_SPEEDUP, (
            f"hit-run kernel speedup geomean {micro_geomean:.2f}x "
            f"below the {MIN_MICRO_SPEEDUP}x gate: {entry}"
        )
    if grid_gated:
        assert grid_geomean >= MIN_GRID_GEOMEAN, (
            f"group-retirement grid speedup geomean {grid_geomean:.2f}x "
            f"below the {MIN_GRID_GEOMEAN}x gate: {entry}"
        )
        if grid_min_gated_speedup is not None:
            assert grid_min_gated_speedup >= MIN_POINT_SPEEDUP, (
                f"worst timeable grid point at {grid_min_gated_speedup:.2f}x "
                f"is below the {MIN_POINT_SPEEDUP}x regression floor: {entry}"
            )
