"""Benchmarks for the ablation studies (design-choice experiments)."""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.experiments import (
    ablation_hierarchical_reduction,
    ablation_interleaving,
    settings,
)


def test_ablation_update_run_length(benchmark):
    """COUP's advantage versus the number of updates per update-only epoch."""
    rows = run_once(
        benchmark,
        ablation_interleaving.run,
        updates_per_read_values=(0, 1, 2, 4, 8, 16),
        n_cores=min(32, settings.max_cores()),
    )
    benchmark.extra_info["rows"] = rows
    advantages = {row["updates_per_read"]: row["coup_over_mesi"] for row in rows}
    # No updates -> no advantage; long update runs -> clear advantage.
    assert advantages[0] == pytest.approx(1.0, rel=0.05)
    assert advantages[16] > advantages[1]
    assert advantages[16] > 1.2


def test_ablation_hierarchical_reduction(benchmark):
    """Hierarchical vs. flat reduction critical paths and socket-width sweep."""
    results = run_once(
        benchmark, ablation_hierarchical_reduction.run, n_cores=min(32, settings.max_cores())
    )
    benchmark.extra_info["analytic"] = results["analytic"]
    benchmark.extra_info["simulated"] = results["simulated"]
    paper_point = [
        row for row in results["analytic"] if row["cores_per_socket"] == 16
    ][0]
    assert paper_point["hierarchical_ops"] == 24
    assert paper_point["flat_ops"] == 128
    assert all(row["run_cycles"] > 0 for row in results["simulated"])
