"""Benchmark: columnar trace generation speed, cache size, and fidelity.

Three claims of the columnar trace format are measured and tracked in
``benchmarks/BENCH_columnar.json``:

* **Generation speed** — every paper workload's vectorized
  ``generate_columnar`` against the object-form ``generate``, median of
  ``REPEATS`` timed repeats each (fresh workload instances per repeat, so
  address-map state never leaks between representations).  The headline
  ``generation_speedup`` is the geometric mean of the per-workload
  speedups (the standard aggregation for speedup ratios, and what the
  paper's own figures use); ``generation_speedup_total`` additionally
  reports aggregate object time over aggregate columnar time, which is
  dominated by the graph workloads' shared RNG structure generation
  (identical on both paths by construction — the draw order is pinned).
  The target is >= 3x.
* **Cached-trace size** — the packed in-memory footprint against the
  object form's measured heap footprint, and the compressed ``.npz`` file
  against a pickled object trace (what a cache or worker hand-off would
  otherwise hold).  The target is >= 5x.
* **Fidelity** — simulating the columnar form must produce bit-identical
  results to the object form for every protocol on the smoke grid.  This
  is a hard assertion: the benchmark *fails* on any divergence, which is
  what the CI benchmark lane enforces.
"""

from __future__ import annotations

import os
import pickle
import statistics
import tracemalloc
from datetime import datetime, timezone

from conftest import BENCH_REPEATS as REPEATS
from conftest import append_trajectory, median_time, run_once

from repro.experiments import settings
from repro.experiments.paper_workloads import PAPER_WORKLOAD_FACTORIES
from repro.sim.columnar import ColumnarTrace
from repro.sim.config import table1_config
from repro.sim.simulator import simulate
from repro.workloads import UpdateStyle

TRAJECTORY_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_columnar.json"
)

SMOKE_PROTOCOLS = ("MESI", "COUP", "RMO")


def _median_generation_seconds(factory, n_cores: int, columnar: bool):
    def generate():
        workload = factory(UpdateStyle.COMMUTATIVE)
        return (
            workload.generate_columnar(n_cores) if columnar else workload.generate(n_cores)
        )

    median_s, _times, trace = median_time(generate)
    return median_s, trace


def _object_heap_bytes(factory, n_cores: int) -> int:
    """Measured heap footprint of one object-form trace."""
    tracemalloc.start()
    before = tracemalloc.take_snapshot()
    trace = factory(UpdateStyle.COMMUTATIVE).generate(n_cores)
    after = tracemalloc.take_snapshot()
    tracemalloc.stop()
    grown = sum(stat.size_diff for stat in after.compare_to(before, "lineno"))
    del trace
    return max(grown, 0)


def _npz_bytes(trace: ColumnarTrace, tmp_dir: str) -> int:
    path = os.path.join(tmp_dir, "bench_trace.npz")
    trace.save_npz(path)
    size = os.path.getsize(path)
    os.unlink(path)
    return size


def test_columnar_generation_and_size(benchmark, tmp_path):
    """Record generation medians and size ratios; pin fidelity."""
    n_cores = min(16, settings.max_cores())
    per_workload = {}
    total_object_s = 0.0
    total_columnar_s = 0.0
    total_object_heap = 0
    total_columnar_bytes = 0
    total_pickle_bytes = 0
    total_npz_bytes = 0
    total_accesses = 0

    for name, factory in PAPER_WORKLOAD_FACTORIES.items():
        object_s, object_trace = _median_generation_seconds(factory, n_cores, columnar=False)
        columnar_s, columnar_trace = _median_generation_seconds(factory, n_cores, columnar=True)
        heap_bytes = _object_heap_bytes(factory, n_cores)
        pickle_bytes = len(pickle.dumps(object_trace, protocol=pickle.HIGHEST_PROTOCOL))
        npz_bytes = _npz_bytes(columnar_trace, str(tmp_path))

        # Fidelity first: the packed stream must be the same trace.
        assert columnar_trace == ColumnarTrace.from_workload(object_trace), name

        total_object_s += object_s
        total_columnar_s += columnar_s
        total_object_heap += heap_bytes
        total_columnar_bytes += columnar_trace.nbytes
        total_pickle_bytes += pickle_bytes
        total_npz_bytes += npz_bytes
        total_accesses += columnar_trace.total_accesses
        per_workload[name] = {
            "accesses": columnar_trace.total_accesses,
            "object_gen_s": round(object_s, 4),
            "columnar_gen_s": round(columnar_s, 4),
            "gen_speedup": round(object_s / columnar_s, 2) if columnar_s else None,
            "object_heap_bytes": heap_bytes,
            "columnar_bytes": columnar_trace.nbytes,
            "pickle_bytes": pickle_bytes,
            "npz_bytes": npz_bytes,
        }

    # Smoke-grid fidelity: columnar simulation == object simulation, every
    # protocol.  A divergence here is a correctness bug, so it hard-fails.
    smoke_factory = PAPER_WORKLOAD_FACTORIES["hist"]
    smoke_object = smoke_factory(UpdateStyle.COMMUTATIVE).generate(n_cores)
    smoke_columnar = smoke_factory(UpdateStyle.COMMUTATIVE).generate_columnar(n_cores)
    for protocol in SMOKE_PROTOCOLS:
        object_result = simulate(
            smoke_object, table1_config(n_cores), protocol, track_values=True
        )
        columnar_result = run_once(
            benchmark if protocol == SMOKE_PROTOCOLS[0] else _NullBenchmark(),
            simulate,
            smoke_columnar,
            table1_config(n_cores),
            protocol,
            track_values=True,
        )
        assert columnar_result == object_result, protocol

    speedups = [stats["gen_speedup"] for stats in per_workload.values()]
    geomean = statistics.geometric_mean(speedups)
    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "scale": settings.scale(),
        "max_cores": settings.max_cores(),
        "n_cores": n_cores,
        "repeats": REPEATS,
        "total_accesses": total_accesses,
        "generation_speedup": round(geomean, 2),
        "generation_speedup_total": round(total_object_s / total_columnar_s, 2),
        "object_gen_s": round(total_object_s, 4),
        "columnar_gen_s": round(total_columnar_s, 4),
        "memory_reduction": round(total_object_heap / total_columnar_bytes, 2),
        "cached_size_reduction": round(total_pickle_bytes / total_npz_bytes, 2),
        "pickle_bytes": total_pickle_bytes,
        "npz_bytes": total_npz_bytes,
        "object_heap_bytes": total_object_heap,
        "columnar_bytes": total_columnar_bytes,
        "per_workload": per_workload,
        "smoke_protocols_identical": list(SMOKE_PROTOCOLS),
    }
    append_trajectory(TRAJECTORY_PATH, entry)
    benchmark.extra_info["columnar"] = entry

    # Loose regression floors (the recorded targets are 3x / 5x; these
    # bounds only catch a wholesale regression without being flaky on
    # loaded CI machines).
    assert entry["generation_speedup"] > 2.0
    assert entry["cached_size_reduction"] > 5.0


class _NullBenchmark:
    """Pedantic-compatible stub so only one protocol feeds pytest-benchmark."""

    def pedantic(self, fn, args=(), kwargs=None, rounds=1, iterations=1):
        return fn(*args, **(kwargs or {}))
