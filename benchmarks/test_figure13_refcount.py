"""Benchmarks regenerating Figure 13: reference-counting case studies."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure13_refcount, settings
from repro.workloads import CountMode


def test_figure13a_immediate_low_count(benchmark):
    """Low reference counts: COUP wins over both SNZI and flat atomics."""
    core_counts = [c for c in (1, 8, 32) if c <= settings.max_cores()]
    rows = run_once(
        benchmark,
        figure13_refcount.run_immediate,
        CountMode.LOW,
        core_counts,
    )
    benchmark.extra_info["rows"] = rows
    largest = rows[-1]
    assert largest["coup_speedup"] > largest["xadd_speedup"]
    assert largest["coup_speedup"] > largest["snzi_speedup"]


def test_figure13b_immediate_high_count(benchmark):
    """High reference counts: SNZI's best case; COUP still beats flat atomics."""
    core_counts = [c for c in (1, 8, 32) if c <= settings.max_cores()]
    rows = run_once(
        benchmark,
        figure13_refcount.run_immediate,
        CountMode.HIGH,
        core_counts,
    )
    benchmark.extra_info["rows"] = rows
    largest = rows[-1]
    assert largest["coup_speedup"] > largest["xadd_speedup"]


def test_figure13c_delayed_deallocation(benchmark):
    """Delayed deallocation: COUP outperforms Refcache across the epoch sweep."""
    rows = run_once(
        benchmark,
        figure13_refcount.run_delayed,
        (1, 10, 100, 400),
        n_cores=min(32, settings.max_cores()),
    )
    benchmark.extra_info["rows"] = rows
    # Paper shape: COUP's advantage over Refcache grows with the number of
    # updates per epoch (the paper reports up to 2.3x).  At a single update
    # per epoch the two schemes degenerate to one shared read-modify-write per
    # counter plus bookkeeping, and our Refcache model's thread-private
    # bookkeeping is slightly cheaper there.
    advantages = [row["coup_over_refcache"] for row in rows]
    assert all(
        row["coup_over_refcache"] > 1.0 for row in rows if row["updates_per_epoch"] >= 10
    )
    assert advantages[-1] > advantages[0]
    assert advantages[0] > 0.5
